package core

import (
	"nbody/internal/blas"
	"nbody/internal/geom"
	"nbody/internal/tree"
)

// TranslationSet holds the precomputed translation matrices of Section
// 3.3.3. All matrices are expressed in units of the box side at the finer of
// the two levels involved, so one set serves every level of the hierarchy
// (the paper: "the same matrices can be used for all levels").
//
// Matrix semantics: row i, column j maps source potential value g_j
// (weighted) to the potential at destination integration point i, so a
// translation is dst += T * src, a K x K matrix-vector product.
type TranslationSet struct {
	Rule   func() int // K, for size reporting without importing sphere here
	K      int
	M      int
	Ratio  float64
	Sep    int
	HasSup bool

	// T1[oct]: child (side 1) outer values -> contribution at parent (side
	// 2) outer points.
	T1 [8]blas.Matrix
	// T3[oct]: parent (side 2) inner values -> contribution at child (side
	// 1) inner points.
	T3 [8]blas.Matrix
	// T2 indexed by relative offset in the cube [-(2d+1), 2d+1]^3 via
	// t2Index: same-size (side 1) source outer values -> target inner
	// points. The full cube is generated "for ease of indexing" exactly as
	// the paper does (1331 matrices for d = 2, including the 125 never
	// used).
	T2 []blas.Matrix
	// T2Super[oct] maps supernode parent offsets (see
	// tree.SupernodeDecomposition) to matrices taking a parent-level (side
	// 2) source outer to the child (side 1) target inner points.
	T2Super [8]map[geom.Coord3]blas.Matrix

	t2Side int // 2*(2d+1)+1
}

// NewTranslationSet computes all matrices for a normalized configuration.
// This is the "compute everything locally" strategy; the data-parallel
// layer implements the compute-in-parallel + replicate alternatives of
// Section 3.3.4 on top of the same builders.
func NewTranslationSet(cfg Config) *TranslationSet {
	cfg, err := cfg.normalize()
	if err != nil {
		panic("core: NewTranslationSet on invalid config: " + err.Error())
	}
	rule := cfg.Rule
	k := rule.K()
	ts := &TranslationSet{
		K:      k,
		M:      cfg.M,
		Ratio:  cfg.RadiusRatio,
		Sep:    cfg.Separation,
		HasSup: cfg.Supernodes,
	}
	ts.Rule = func() int { return k }

	// T1 and T3: child centers sit at (+-1/2, +-1/2, +-1/2) from the parent
	// center in child-side units; child radius = Ratio, parent radius =
	// 2*Ratio.
	aChild := cfg.RadiusRatio
	aParent := 2 * cfg.RadiusRatio
	for oct := 0; oct < 8; oct++ {
		cc := octantOffset(oct) // child center relative to parent center
		t1 := blas.NewMatrix(k, k)
		t3 := blas.NewMatrix(k, k)
		for i, si := range rule.Points {
			// T1 destination: parent outer point, relative to child center.
			xp := si.Scale(aParent).Sub(cc)
			rp := xp.Norm()
			up := xp.Scale(1 / rp)
			// T3 destination: child inner point, relative to parent center.
			xc := cc.Add(si.Scale(aChild))
			rc := xc.Norm()
			var uc geom.Vec3
			if rc > 0 {
				uc = xc.Scale(1 / rc)
			}
			for j, sj := range rule.Points {
				t1.Set(i, j, rule.W[j]*outerKernel(cfg.M, aChild, rp, sj.Dot(up)))
				t3.Set(i, j, rule.W[j]*innerKernel(cfg.M, aParent, rc, sj.Dot(uc)))
			}
		}
		ts.T1[oct] = t1
		ts.T3[oct] = t3
	}

	// T2: all offsets in [-(2d+1), 2d+1]^3, same-size boxes.
	bound := tree.InteractiveOffsetBound(cfg.Separation)
	side := 2*bound + 1
	ts.t2Side = side
	ts.T2 = make([]blas.Matrix, side*side*side)
	a := cfg.RadiusRatio
	for dz := -bound; dz <= bound; dz++ {
		for dy := -bound; dy <= bound; dy++ {
			for dx := -bound; dx <= bound; dx++ {
				off := geom.Coord3{X: dx, Y: dy, Z: dz}
				if off.ChebDist(geom.Coord3{}) <= cfg.Separation {
					continue // near field: never used, left as zero matrix
				}
				// The stored offset o satisfies source = target + o, so the
				// target center sits at -o relative to the source center.
				rel := geom.Vec3{X: -float64(dx), Y: -float64(dy), Z: -float64(dz)}
				ts.T2[ts.t2Index(off)] = t2Matrix(cfg, rel, a, a)
			}
		}
	}

	// Supernode matrices: parent-level (side 2, radius 2*Ratio) sources.
	if cfg.Supernodes {
		for oct := 0; oct < 8; oct++ {
			sn := tree.SupernodeDecomposition(cfg.Separation, oct)
			m := make(map[geom.Coord3]blas.Matrix, len(sn.ParentOffsets))
			delta := octantOffset(oct)
			for _, t := range sn.ParentOffsets {
				// Target child center relative to source parent center, in
				// child-side units: -(2t - delta).
				rel := geom.Vec3{X: float64(2 * t.X), Y: float64(2 * t.Y), Z: float64(2 * t.Z)}.Sub(delta)
				m[t] = t2Matrix(cfg, rel.Scale(-1), aParent, aChild)
			}
			ts.T2Super[oct] = m
		}
	}
	return ts
}

// BuildOneMatrix constructs a single representative translation matrix for
// the normalized configuration (used by the precomputation experiments of
// Section 3.3.4, which need to time individual matrix builds). The variant
// index selects different relative geometries so repeated builds do not
// degenerate.
func BuildOneMatrix(cfg Config, variant int) blas.Matrix {
	cfg, err := cfg.normalize()
	if err != nil {
		panic("core: BuildOneMatrix on invalid config: " + err.Error())
	}
	offs := []geom.Vec3{
		{X: 3, Y: 0, Z: 0}, {X: 3, Y: 1, Z: 0}, {X: 3, Y: 1, Z: 1}, {X: 4, Y: 2, Z: 0},
		{X: -3, Y: 2, Z: 1}, {X: 0, Y: -4, Z: 3}, {X: 5, Y: 0, Z: -2}, {X: -3, Y: -3, Z: -3},
	}
	a := cfg.RadiusRatio
	return t2Matrix(cfg, offs[variant%len(offs)], a, a)
}

// t2Matrix builds the outer -> inner conversion matrix for a target box
// whose center sits at rel (in units of the finer box side) from the source
// center, with source outer radius aSrc and target inner radius aDst.
func t2Matrix(cfg Config, rel geom.Vec3, aSrc, aDst float64) blas.Matrix {
	rule := cfg.Rule
	k := rule.K()
	t := blas.NewMatrix(k, k)
	for i, si := range rule.Points {
		x := rel.Add(si.Scale(aDst))
		r := x.Norm()
		u := x.Scale(1 / r)
		for j, sj := range rule.Points {
			t.Set(i, j, rule.W[j]*outerKernel(cfg.M, aSrc, r, sj.Dot(u)))
		}
	}
	return t
}

// t2Index maps a relative offset to its slot in the T2 slice.
func (ts *TranslationSet) t2Index(o geom.Coord3) int {
	b := (ts.t2Side - 1) / 2
	return ((o.Z+b)*ts.t2Side+(o.Y+b))*ts.t2Side + (o.X + b)
}

// T2For returns the translation matrix for a relative offset in the
// interactive field.
func (ts *TranslationSet) T2For(o geom.Coord3) blas.Matrix { return ts.T2[ts.t2Index(o)] }

// NumT2Matrices returns the size of the full T2 indexing cube: 1331 for
// separation 2, matching the paper's count.
func (ts *TranslationSet) NumT2Matrices() int { return len(ts.T2) }

// MatrixBytes returns the memory footprint of the T2 matrix store in bytes
// (the paper: 1.53 MB for K = 12, 53.9 MB for K = 72).
func (ts *TranslationSet) MatrixBytes() int64 {
	return int64(len(ts.T2)) * int64(ts.K) * int64(ts.K) * 8
}

// octantOffset returns the child-center offset from the parent center in
// child-side units for an octant index.
func octantOffset(oct int) geom.Vec3 {
	v := geom.Vec3{X: -0.5, Y: -0.5, Z: -0.5}
	if oct&1 != 0 {
		v.X = 0.5
	}
	if oct&2 != 0 {
		v.Y = 0.5
	}
	if oct&4 != 0 {
		v.Z = 0.5
	}
	return v
}

// TranslationMatrixFlops is the cost of building one K x K translation
// matrix: K^2 kernel evaluations of M+1 terms each.
func TranslationMatrixFlops(k, m int) int64 {
	return int64(k) * int64(k) * int64(m+1) * FlopsKernel
}
