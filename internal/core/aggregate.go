package core

import (
	"sync"
	"sync/atomic"

	"nbody/internal/blas"
)

// aggBufPool recycles the gather/scatter buffers of aggregatedApply; a
// traversal issues thousands of chunked gemms and the buffers are all the
// same maximal size.
var aggBufPool sync.Pool

// aggregationChunk is the number of potential vectors aggregated into one
// matrix-matrix multiplication. The paper aggregates along a whole subgrid
// axis; here a fixed chunk keeps the working set inside cache independent of
// grid size.
const aggregationChunk = 128

// aggregatedApply performs dst[dstIdx[c]] += T * src[srcIdx[c]] for all c,
// by gathering source vectors as columns of a K x chunk matrix, multiplying
// with one level-3 BLAS call per chunk, and scattering the product columns
// back (Section 3.3.3: "conversions for all local boxes ... with the same
// relative location can be aggregated into a single matrix-matrix
// multiplication", at the cost of the 2/K-relative copy overhead measured
// in Table 3).
//
// dstIdx values must be unique within one call; chunks then write disjoint
// destinations and can run in parallel.
func aggregatedApply(t blas.Matrix, src, dst []float64, srcIdx, dstIdx []int32, k int) {
	n := len(srcIdx)
	if n == 0 {
		return
	}
	nchunks := (n + aggregationChunk - 1) / aggregationChunk
	blas.Parallel(nchunks, func(ci int) {
		lo := ci * aggregationChunk
		hi := lo + aggregationChunk
		if hi > n {
			hi = n
		}
		cols := hi - lo
		var backing []float64
		if v := aggBufPool.Get(); v != nil {
			backing = v.([]float64)
		}
		if len(backing) < 2*k*aggregationChunk {
			backing = make([]float64, 2*k*aggregationChunk)
		}
		defer aggBufPool.Put(backing)
		b := blas.Matrix{Rows: k, Cols: cols, Data: backing[:k*cols]}
		c := blas.Matrix{Rows: k, Cols: cols, Data: backing[k*aggregationChunk : k*aggregationChunk+k*cols]}
		for i := range c.Data {
			c.Data[i] = 0
		}
		// Gather: column j of B is the potential vector of source box
		// srcIdx[lo+j] (the transposing copy the paper charges 2K cycles
		// per vector for).
		for j := 0; j < cols; j++ {
			sb := int(srcIdx[lo+j]) * k
			for r := 0; r < k; r++ {
				b.Data[r*cols+j] = src[sb+r]
			}
		}
		blas.Dgemm(t, b, c)
		// Scatter-add: column j of C accumulates into destination box
		// dstIdx[lo+j].
		for j := 0; j < cols; j++ {
			db := int(dstIdx[lo+j]) * k
			for r := 0; r < k; r++ {
				dst[db+r] += c.Data[r*cols+j]
			}
		}
	})
}

// atomicAdd64 accumulates instrumentation counters from parallel workers.
func atomicAdd64(p *int64, v int64) { atomic.AddInt64(p, v) }
