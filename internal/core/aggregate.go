package core

import (
	"context"
	"sync"
	"sync/atomic"

	"nbody/internal/blas"
)

// aggScratch holds the working set of one aggregation chunk: the K x chunk
// gathered right-hand block, the K x chunk product block, and the decoded
// destination offsets of a lattice chunk. Pooled by pointer so steady-state
// solves recycle it without allocating.
type aggScratch struct {
	b   []float64 // gathered source block, k * aggregationChunk
	c   []float64 // product block, k * aggregationChunk
	idx []int32   // aggregationChunk decoded destination indices
}

var aggPool = sync.Pool{New: func() any { return new(aggScratch) }}

func getAggScratch(k int) *aggScratch {
	s := aggPool.Get().(*aggScratch)
	if cap(s.b) < k*aggregationChunk {
		s.b = make([]float64, k*aggregationChunk)
		s.c = make([]float64, k*aggregationChunk)
	}
	if cap(s.idx) < aggregationChunk {
		s.idx = make([]int32, aggregationChunk)
	}
	s.b = s.b[:k*aggregationChunk]
	s.c = s.c[:k*aggregationChunk]
	s.idx = s.idx[:aggregationChunk]
	return s
}

// aggregationChunk is the number of potential vectors aggregated into one
// matrix-matrix multiplication. The paper aggregates along a whole subgrid
// axis; here a fixed chunk keeps the working set inside cache independent of
// grid size.
const aggregationChunk = 128

// aggregatedApply performs dst[dstIdx[c]] += T * src[srcIdx[c]] for all c,
// by gathering source vectors as columns of a K x chunk matrix, multiplying
// with one level-3 BLAS call per chunk, and scattering the product columns
// back (Section 3.3.3: "conversions for all local boxes ... with the same
// relative location can be aggregated into a single matrix-matrix
// multiplication", at the cost of the 2/K-relative copy overhead measured
// in Table 3). The multiply is DgemmAssign, so the product block needs no
// zeroing pass between reuses.
//
// dstIdx values must be unique within one call; chunks then write disjoint
// destinations and can run in parallel. With a single executor the chunk
// loop runs inline — no closure, no scheduler round trip — which is what
// keeps steady-state solves allocation-free.
func aggregatedApply(ctx context.Context, t blas.Matrix, src, dst []float64, srcIdx, dstIdx []int32, k int) {
	n := len(srcIdx)
	if n == 0 {
		return
	}
	nchunks := (n + aggregationChunk - 1) / aggregationChunk
	if blas.Serial() || nchunks == 1 {
		s := getAggScratch(k)
		for ci := 0; ci < nchunks; ci++ {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			aggChunk(s, t, src, dst, srcIdx, dstIdx, k, ci)
		}
		aggPool.Put(s)
		return
	}
	_ = blas.ParallelCtx(ctx, nchunks, func(ci int) {
		s := getAggScratch(k)
		aggChunk(s, t, src, dst, srcIdx, dstIdx, k, ci)
		aggPool.Put(s)
	})
}

// aggChunk processes chunk ci of an index-pair aggregation: gather source
// vectors as columns, one assign-gemm, scatter-add the product columns.
func aggChunk(s *aggScratch, t blas.Matrix, src, dst []float64, srcIdx, dstIdx []int32, k, ci int) {
	lo := ci * aggregationChunk
	hi := lo + aggregationChunk
	if hi > len(srcIdx) {
		hi = len(srcIdx)
	}
	cols := hi - lo
	b := blas.Matrix{Rows: k, Cols: cols, Data: s.b[:k*cols]}
	c := blas.Matrix{Rows: k, Cols: cols, Data: s.c[:k*cols]}
	// Gather: column j of B is the potential vector of source box
	// srcIdx[lo+j] (the transposing copy the paper charges 2K cycles per
	// vector for).
	for j := 0; j < cols; j++ {
		sb := int(srcIdx[lo+j]) * k
		col := src[sb : sb+k]
		for r, v := range col {
			b.Data[r*cols+j] = v
		}
	}
	blas.DgemmAssign(t, b, c)
	// Scatter-add: column j of C accumulates into destination box
	// dstIdx[lo+j].
	for j := 0; j < cols; j++ {
		db := int(dstIdx[lo+j]) * k
		out := dst[db : db+k]
		for r := range out {
			out[r] += c.Data[r*cols+j]
		}
	}
}

// aggregatedApplyLattice is aggregatedApply for the interactive-field (T2)
// sweeps, where the (source, target) pairs of one (octant, offset) form a
// regular parity-aligned lattice (see latticeT2). Instead of materializing
// index arrays — which for deep hierarchies would cost hundreds of
// megabytes across the 875 offsets — target indices are decoded on the fly
// and the source index is target + lat.delta.
func aggregatedApplyLattice(ctx context.Context, t blas.Matrix, src, dst []float64, lat latticeT2, k int) {
	n := int(lat.count)
	if n == 0 {
		return
	}
	nchunks := (n + aggregationChunk - 1) / aggregationChunk
	if blas.Serial() || nchunks == 1 {
		s := getAggScratch(k)
		for ci := 0; ci < nchunks; ci++ {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			latChunk(s, t, src, dst, lat, k, ci)
		}
		aggPool.Put(s)
		return
	}
	_ = blas.ParallelCtx(ctx, nchunks, func(ci int) {
		s := getAggScratch(k)
		latChunk(s, t, src, dst, lat, k, ci)
		aggPool.Put(s)
	})
}

// latticeWalk is a cursor over the target boxes of one latticeT2, advanced
// x fastest. The packed and generic chunk bodies share the decode.
type latticeWalk struct {
	ix, iy         int
	x, y, z        int
	nx, ny         int
	lox, loy, grid int
}

// startLatticeWalk decodes the lattice point at linear position lo.
func startLatticeWalk(lat latticeT2, lo int) latticeWalk {
	nx, ny := int(lat.nx), int(lat.ny)
	ix := lo % nx
	rem := lo / nx
	iy := rem % ny
	iz := rem / ny
	return latticeWalk{
		ix: ix, iy: iy,
		x:  int(lat.lox) + 2*ix,
		y:  int(lat.loy) + 2*iy,
		z:  int(lat.loz) + 2*iz,
		nx: nx, ny: ny,
		lox: int(lat.lox), loy: int(lat.loy),
		grid: int(lat.grid),
	}
}

// index returns the linear box index of the current lattice point.
func (w *latticeWalk) index() int { return (w.z*w.grid+w.y)*w.grid + w.x }

// next advances one lattice point, x fastest.
func (w *latticeWalk) next() {
	w.ix++
	w.x += 2
	if w.ix == w.nx {
		w.ix, w.x = 0, w.lox
		w.iy++
		w.y += 2
		if w.iy == w.ny {
			w.iy, w.y = 0, w.loy
			w.z += 2
		}
	}
}

// latChunk processes chunk ci of one lattice sweep: decode target boxes,
// gather src[target+delta] as columns, one assign-gemm, scatter-add into
// the targets.
func latChunk(s *aggScratch, t blas.Matrix, src, dst []float64, lat latticeT2, k, ci int) {
	lo := ci * aggregationChunk
	hi := lo + aggregationChunk
	if hi > int(lat.count) {
		hi = int(lat.count)
	}
	cols := hi - lo
	b := blas.Matrix{Rows: k, Cols: cols, Data: s.b[:k*cols]}
	c := blas.Matrix{Rows: k, Cols: cols, Data: s.c[:k*cols]}
	delta := int(lat.delta) * k
	w := startLatticeWalk(lat, lo)
	for j := 0; j < cols; j++ {
		db := w.index() * k
		s.idx[j] = int32(db)
		col := src[db+delta : db+delta+k]
		for r, v := range col {
			b.Data[r*cols+j] = v
		}
		w.next()
	}
	blas.DgemmAssign(t, b, c)
	for j := 0; j < cols; j++ {
		db := int(s.idx[j])
		out := dst[db : db+k]
		for r := range out {
			out[r] += c.Data[r*cols+j]
		}
	}
}

// atomicAdd64 accumulates instrumentation counters from parallel workers.
func atomicAdd64(p *int64, v int64) { atomic.AddInt64(p, v) }
