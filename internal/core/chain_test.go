package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nbody/internal/geom"
	"nbody/internal/sphere"
	"nbody/internal/tree"
)

// These tests verify the translation operators in isolation — the algebraic
// chain P2O -> T1 -> T2 -> T3 -> L2P against direct evaluation — which is
// the correctness core of the whole method (and the place the T2 offset
// sign bug once hid; see git history of matrices.go).

func chainConfig(t *testing.T) Config {
	t.Helper()
	cfg, err := Config{Degree: 11, Depth: 3}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// randomCharges places charges in the child box with octant oct of a unit
// parent box centered at origin.
func randomChargesInChild(rng *rand.Rand, oct int) ([]geom.Vec3, []float64) {
	child := geom.Box3{Center: geom.Vec3{}, Side: 2}.Child(oct) // side-1 child
	var pos []geom.Vec3
	var q []float64
	for i := 0; i < 15; i++ {
		pos = append(pos, geom.Vec3{
			X: child.Center.X + (rng.Float64()-0.5)*0.999,
			Y: child.Center.Y + (rng.Float64()-0.5)*0.999,
			Z: child.Center.Z + (rng.Float64()-0.5)*0.999,
		})
		q = append(q, rng.Float64())
	}
	return pos, q
}

func sampleOuter(rule *sphere.Rule, center geom.Vec3, a float64, pos []geom.Vec3, q []float64) []float64 {
	g := make([]float64, rule.K())
	for i, s := range rule.Points {
		p := center.Add(s.Scale(a))
		var v float64
		for j := range pos {
			v += q[j] / p.Dist(pos[j])
		}
		g[i] = v
	}
	return g
}

func TestT1ChainMatchesDirect(t *testing.T) {
	// Child outer -> (T1) -> parent outer, evaluated far away, must match
	// the direct sum.
	cfg := chainConfig(t)
	ts := NewTranslationSet(cfg)
	rng := rand.New(rand.NewSource(131))
	for oct := 0; oct < 8; oct++ {
		pos, q := randomChargesInChild(rng, oct)
		child := geom.Box3{Center: geom.Vec3{}, Side: 2}.Child(oct)
		gc := sampleOuter(cfg.Rule, child.Center, cfg.RadiusRatio, pos, q)
		gp := make([]float64, ts.K)
		// Parent box side 2 centered at origin; T1 matrices are in
		// child-side units, matching this geometry exactly.
		for i := range gp {
			gp[i] = 0
		}
		mulAdd(ts.T1[oct], gc, gp)
		// Evaluate the parent outer far away (outside parent sphere).
		x := geom.Vec3{X: 7, Y: -5, Z: 6}
		got := EvalOuter(cfg.Rule, cfg.M, geom.Vec3{}, 2*cfg.RadiusRatio, gp, x)
		var want float64
		for j := range pos {
			want += q[j] / x.Dist(pos[j])
		}
		if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-4 {
			t.Errorf("oct %d: T1 chain error %.2e", oct, rel)
		}
	}
}

func TestT2ChainMatchesDirect(t *testing.T) {
	// Source outer -> (T2 at a two-separation offset) -> target inner,
	// evaluated inside the target box.
	cfg := chainConfig(t)
	ts := NewTranslationSet(cfg)
	rng := rand.New(rand.NewSource(132))
	offsets := []geom.Coord3{{X: 3, Y: 0, Z: 0}, {X: -3, Y: 2, Z: -1}, {X: 4, Y: 4, Z: 4}, {X: 0, Y: 0, Z: -5}}
	for _, o := range offsets {
		// Source box side 1 at origin; target at -o (source = target + o).
		var pos []geom.Vec3
		var q []float64
		for i := 0; i < 12; i++ {
			pos = append(pos, geom.Vec3{
				X: (rng.Float64() - 0.5) * 0.999,
				Y: (rng.Float64() - 0.5) * 0.999,
				Z: (rng.Float64() - 0.5) * 0.999,
			})
			q = append(q, rng.Float64()*2-1)
		}
		gs := sampleOuter(cfg.Rule, geom.Vec3{}, cfg.RadiusRatio, pos, q)
		gt := make([]float64, ts.K)
		mulAdd(ts.T2For(o), gs, gt)
		tc := geom.Vec3{X: -float64(o.X), Y: -float64(o.Y), Z: -float64(o.Z)}
		for trial := 0; trial < 10; trial++ {
			x := tc.Add(geom.Vec3{
				X: (rng.Float64() - 0.5) * 0.9,
				Y: (rng.Float64() - 0.5) * 0.9,
				Z: (rng.Float64() - 0.5) * 0.9,
			})
			got := EvalInner(cfg.Rule, cfg.M, tc, cfg.RadiusRatio, gt, x)
			var want float64
			for j := range pos {
				want += q[j] / x.Dist(pos[j])
			}
			if rel := math.Abs(got-want) / (1 + math.Abs(want)); rel > 2e-3 {
				t.Errorf("offset %v: T2 chain error %.2e at %v", o, rel, x)
			}
		}
	}
}

func TestT3ChainPreservesField(t *testing.T) {
	// A smooth far field sampled on the parent inner sphere, shifted to a
	// child with T3, must evaluate to the same values inside the child.
	cfg := chainConfig(t)
	ts := NewTranslationSet(cfg)
	rng := rand.New(rand.NewSource(133))
	// Far sources well outside the parent sphere.
	var pos []geom.Vec3
	var q []float64
	for i := 0; i < 10; i++ {
		dir := geom.Vec3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}.Normalize()
		pos = append(pos, dir.Scale(8+4*rng.Float64()))
		q = append(q, rng.Float64())
	}
	truePot := func(x geom.Vec3) float64 {
		var v float64
		for j := range pos {
			v += q[j] / x.Dist(pos[j])
		}
		return v
	}
	// Parent inner values (parent box side 2 at origin, radius 2*ratio).
	gp := make([]float64, ts.K)
	for i, s := range cfg.Rule.Points {
		gp[i] = truePot(s.Scale(2 * cfg.RadiusRatio))
	}
	for oct := 0; oct < 8; oct++ {
		gc := make([]float64, ts.K)
		mulAdd(ts.T3[oct], gp, gc)
		child := geom.Box3{Center: geom.Vec3{}, Side: 2}.Child(oct)
		for trial := 0; trial < 8; trial++ {
			x := child.Center.Add(geom.Vec3{
				X: (rng.Float64() - 0.5) * 0.9,
				Y: (rng.Float64() - 0.5) * 0.9,
				Z: (rng.Float64() - 0.5) * 0.9,
			})
			got := EvalInner(cfg.Rule, cfg.M, child.Center, cfg.RadiusRatio, gc, x)
			want := truePot(x)
			if rel := math.Abs(got-want) / math.Abs(want); rel > 1e-4 {
				t.Errorf("oct %d: T3 chain error %.2e", oct, rel)
			}
		}
	}
}

func mulAdd(m interface{ At(int, int) float64 }, x, y []float64) {
	for i := range y {
		var s float64
		for j := range x {
			s += m.At(i, j) * x[j]
		}
		y[i] += s
	}
}

func TestPartitionProperties(t *testing.T) {
	h := mustHierarchy(t)
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		rng := rand.New(rand.NewSource(seed))
		pos := make([]geom.Vec3, n)
		for i := range pos {
			pos[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		}
		p := NewPartition(h, pos)
		// Perm is a permutation of [0, n).
		seen := make([]bool, n)
		for _, i := range p.Perm {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		// Every particle is in the box the partition says it is.
		grid := p.Grid
		for b := 0; b+1 < len(p.Start); b++ {
			c := geom.CoordFromIndex(b, grid)
			for _, i := range p.Perm[p.Start[b]:p.Start[b+1]] {
				if h.LeafOf(pos[i]) != c {
					return false
				}
			}
		}
		// Counts are consistent.
		total := 0
		for b := 0; b+1 < len(p.Start); b++ {
			total += p.Count(geom.CoordFromIndex(b, grid))
		}
		return total == n && p.MaxPerBox() <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func mustHierarchy(t *testing.T) tree.Hierarchy {
	t.Helper()
	h, err := tree.NewHierarchy(unitBox(), 3)
	if err != nil {
		t.Fatal(err)
	}
	return h
}
