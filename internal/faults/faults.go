// Package faults is a build-independent fault-injection harness for the
// solve pipeline. Solver phases call Fire (or FireSlice) at named sites;
// tests arm a site with a panic, a NaN poisoning, or a delay and then
// drive a solve through the public API to prove the failure surfaces as a
// typed error, the worker pool survives, and the next solve is clean.
//
// The harness is compiled into release binaries on purpose — no build tag —
// so the code under test is the code that ships. The cost when disarmed is
// one atomic load of a package-level bool per site, which is unmeasurable
// against any phase worth naming (verified by the allocs/op and wall-time
// guard benchmarks in CI).
//
// Site names follow "<solver>/<phase>": e.g. "core/T2", "core2/near",
// "dpfmm/ghost". Each solver package documents its sites next to the Fire
// calls; tests reference them through the solver's exported site list so a
// renamed phase fails compilation, not silently.
package faults

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// kind is what an armed site does when fired.
type kind int

const (
	kindPanic kind = iota
	kindNaN
	kindDelay
)

type fault struct {
	kind kind
	val  any           // panic value (kindPanic)
	d    time.Duration // sleep (kindDelay)
	// remaining bounds how many firings trigger; Fire decrements it with a
	// CAS loop so exactly count concurrent firers trigger, even when the
	// site sits inside a parallel region.
	remaining atomic.Int64
}

var (
	// armed is the fast path: while false, Fire is a single atomic load.
	armed atomic.Bool

	mu    sync.Mutex
	sites map[string]*fault
)

// InjectPanic arms site to panic with val on its next firing.
func InjectPanic(site string, val any) { arm(site, &fault{kind: kindPanic, val: val}) }

// InjectPanicN arms site to panic with val on its next count firings — for
// driving retry supervisors through several consecutive failures before the
// site goes quiet and an attempt succeeds.
func InjectPanicN(site string, val any, count int) {
	armN(site, &fault{kind: kindPanic, val: val}, int64(count))
}

// InjectNaN arms site to overwrite the slice passed to FireSlice with NaNs
// on its next firing. Sites that only call Fire ignore a NaN arming.
func InjectNaN(site string) { arm(site, &fault{kind: kindNaN}) }

// InjectDelay arms site to sleep d on its next firing — for exercising
// cancellation deadlines and slow-phase behavior deterministically.
func InjectDelay(site string, d time.Duration) { arm(site, &fault{kind: kindDelay, d: d}) }

// InjectDelayN arms site to sleep d on each of its next count firings — for
// holding a worker fleet deterministically busy while a test probes queueing
// and admission behavior.
func InjectDelayN(site string, d time.Duration, count int) {
	armN(site, &fault{kind: kindDelay, d: d}, int64(count))
}

// InjectDelayEvery arms site to sleep d on every firing until Reset (or a
// re-arming) — the chaos-harness primitive: a transport-level stall (slow
// dequeue, delayed worker) held open for a whole soak window rather than a
// counted number of requests, so open-loop load keeps hitting it for as
// long as the test wants the degraded regime to last.
func InjectDelayEvery(site string, d time.Duration) {
	armN(site, &fault{kind: kindDelay, d: d}, unlimited)
}

// InjectPanicEvery arms site to panic with val on every firing until Reset —
// for chaos windows where each request through a site must fail, proving
// the containment and shedding layers hold under a persistent fault, not
// just a one-shot one.
func InjectPanicEvery(site string, val any) {
	armN(site, &fault{kind: kindPanic, val: val}, unlimited)
}

// unlimited is the remaining-count sentinel for the *Every injections:
// lookup treats a negative count as inexhaustible.
const unlimited = int64(-1)

func arm(site string, f *fault) { armN(site, f, 1) }

func armN(site string, f *fault, count int64) {
	f.remaining.Store(count)
	mu.Lock()
	if sites == nil {
		sites = make(map[string]*fault)
	}
	sites[site] = f
	mu.Unlock()
	armed.Store(true)
}

// Reset disarms every site. Tests defer it so an armed fault never leaks
// into another test.
func Reset() {
	mu.Lock()
	sites = nil
	mu.Unlock()
	armed.Store(false)
}

// lookup claims one firing of site, or nil. The CAS loop makes the claim
// exact under concurrency: an armed count of 1 triggers exactly once even
// if every worker of a parallel region fires the site simultaneously.
func lookup(site string) *fault {
	mu.Lock()
	f := sites[site]
	mu.Unlock()
	if f == nil {
		return nil
	}
	for {
		r := f.remaining.Load()
		if r < 0 {
			return f // unlimited arming: never decremented, never exhausted
		}
		if r == 0 {
			return nil
		}
		if f.remaining.CompareAndSwap(r, r-1) {
			return f
		}
	}
}

// Fire triggers any fault armed at site. Disarmed (the production state) it
// is one atomic load. A NaN arming is ignored — the site carries no data;
// use FireSlice at sites that own a poisonable buffer.
func Fire(site string) {
	if !armed.Load() {
		return
	}
	fire(site, nil)
}

// FireSlice is Fire for sites that own a float64 buffer: a NaN arming
// poisons every element, modeling a corrupted kernel output that must be
// caught (or washed out) downstream rather than crash anything.
func FireSlice(site string, data []float64) {
	if !armed.Load() {
		return
	}
	fire(site, data)
}

func fire(site string, data []float64) {
	f := lookup(site)
	if f == nil {
		return
	}
	switch f.kind {
	case kindPanic:
		panic(f.val)
	case kindNaN:
		for i := range data {
			data[i] = math.NaN()
		}
	case kindDelay:
		time.Sleep(f.d)
	}
}
