package faults

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDisarmedIsNoOp(t *testing.T) {
	Reset()
	Fire("x/y")
	buf := []float64{1, 2, 3}
	FireSlice("x/y", buf)
	if buf[0] != 1 {
		t.Fatal("disarmed FireSlice mutated data")
	}
}

func TestPanicFiresExactlyOnce(t *testing.T) {
	defer Reset()
	InjectPanic("s", "bang")
	got := func() (r any) {
		defer func() { r = recover() }()
		Fire("s")
		return nil
	}()
	if got != "bang" {
		t.Fatalf("recovered %v, want bang", got)
	}
	Fire("s") // one-shot: second firing is a no-op
}

func TestPanicExactUnderConcurrency(t *testing.T) {
	defer Reset()
	InjectPanic("c", "bang")
	var fired int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if recover() != nil {
					atomic.AddInt32(&fired, 1)
				}
			}()
			Fire("c")
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly 1", fired)
	}
}

func TestPanicNFiresExactlyN(t *testing.T) {
	defer Reset()
	InjectPanicN("n-shot", "bang", 3)
	fired := 0
	for i := 0; i < 5; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fired++
				}
			}()
			Fire("n-shot")
		}()
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want exactly 3", fired)
	}
}

func TestNaNPoisonsSlice(t *testing.T) {
	defer Reset()
	InjectNaN("n")
	buf := []float64{1, 2, 3}
	FireSlice("n", buf)
	for i, v := range buf {
		if !math.IsNaN(v) {
			t.Fatalf("buf[%d] = %v, want NaN", i, v)
		}
	}
	// Plain Fire at a NaN-armed site must not panic.
	InjectNaN("n2")
	Fire("n2")
}

func TestDelay(t *testing.T) {
	defer Reset()
	InjectDelay("d", 30*time.Millisecond)
	start := time.Now()
	Fire("d")
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Fatalf("delay fired in %v, want >= 30ms", el)
	}
}

func TestResetDisarms(t *testing.T) {
	InjectPanic("r", "bang")
	Reset()
	Fire("r")
}

func TestPanicEveryFiresUntilReset(t *testing.T) {
	defer Reset()
	InjectPanicEvery("every-p", "bang")
	fired := 0
	for i := 0; i < 20; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fired++
				}
			}()
			Fire("every-p")
		}()
	}
	if fired != 20 {
		t.Fatalf("unlimited arming fired %d/20 times, want every firing", fired)
	}
	Reset()
	Fire("every-p") // must be a no-op now
}

func TestDelayEveryFiresUntilReset(t *testing.T) {
	defer Reset()
	InjectDelayEvery("every-d", 5*time.Millisecond)
	for i := 0; i < 3; i++ {
		start := time.Now()
		Fire("every-d")
		if el := time.Since(start); el < 5*time.Millisecond {
			t.Fatalf("firing %d took %v, want >= 5ms (arming must not exhaust)", i, el)
		}
	}
	Reset()
	start := time.Now()
	Fire("every-d")
	if el := time.Since(start); el >= 5*time.Millisecond {
		t.Fatalf("post-Reset firing slept %v, want no-op", el)
	}
}

func TestEveryExactUnderConcurrency(t *testing.T) {
	defer Reset()
	InjectPanicEvery("every-c", "bang")
	var fired atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				func() {
					defer func() {
						if recover() != nil {
							fired.Add(1)
						}
					}()
					Fire("every-c")
				}()
			}
		}()
	}
	wg.Wait()
	if got := fired.Load(); got != 400 {
		t.Fatalf("unlimited arming fired %d/400 under concurrency", got)
	}
}
