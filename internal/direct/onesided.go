package direct

import (
	"math"

	"nbody/internal/geom"
)

// Accumulate adds to phiA the potentials induced at posA by the source set
// (posB, qB) without touching the sources: the one-sided box-box kernel
// used when target boxes are processed in parallel and Newton's-third-law
// write-back would race.
func Accumulate(posA []geom.Vec3, phiA []float64, posB []geom.Vec3, qB []float64) {
	for i := range posA {
		pi := posA[i]
		var s float64
		for j := range posB {
			if r := pi.Dist(posB[j]); r > 0 {
				s += qB[j] / r
			}
		}
		phiA[i] += s
	}
}

// AccumulateForce adds to accA the field induced at posA by the source set,
// with the (y-x)/r^3 convention of Accelerations.
func AccumulateForce(posA []geom.Vec3, accA []geom.Vec3, posB []geom.Vec3, qB []float64) {
	for i := range posA {
		pi := posA[i]
		a := accA[i]
		for j := range posB {
			d := posB[j].Sub(pi)
			r2 := d.Norm2()
			if r2 == 0 {
				continue // coincident particles: self-exclusion, not Inf
			}
			inv := 1 / (r2 * math.Sqrt(r2))
			a = a.Add(d.Scale(qB[j] * inv))
		}
		accA[i] = a
	}
}

// WithinForce accumulates the intra-set accelerations (self-interactions
// excluded) into acc.
func WithinForce(pos []geom.Vec3, q []float64, acc []geom.Vec3) {
	for i := range pos {
		pi := pos[i]
		for j := i + 1; j < len(pos); j++ {
			d := pos[j].Sub(pi)
			r2 := d.Norm2()
			if r2 == 0 {
				continue // coincident particles: self-exclusion, not Inf
			}
			inv := 1 / (r2 * math.Sqrt(r2))
			f := d.Scale(inv)
			acc[i] = acc[i].Add(f.Scale(q[j]))
			acc[j] = acc[j].Sub(f.Scale(q[i]))
		}
	}
}
