package direct

import (
	"nbody/internal/geom"
	"nbody/internal/kernels"
)

// Accumulate adds to phiA the potentials induced at posA by the source set
// (posB, qB) without touching the sources: the one-sided box-box kernel
// used when target boxes are processed in parallel and Newton's-third-law
// write-back would race.
func Accumulate(posA []geom.Vec3, phiA []float64, posB []geom.Vec3, qB []float64) {
	kernels.Accumulate(posA, phiA, posB, qB)
}

// AccumulateForce adds to accA the field induced at posA by the source set,
// with the (y-x)/r^3 convention of Accelerations.
func AccumulateForce(posA []geom.Vec3, accA []geom.Vec3, posB []geom.Vec3, qB []float64) {
	kernels.AccumulateForce(posA, accA, posB, qB)
}

// WithinForce accumulates the intra-set accelerations (self-interactions
// excluded) into acc.
func WithinForce(pos []geom.Vec3, q []float64, acc []geom.Vec3) {
	kernels.WithinForce(pos, q, acc)
}
