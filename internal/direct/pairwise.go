package direct

import (
	"nbody/internal/geom"
	"nbody/internal/kernels"
)

// PairwiseForce is the force counterpart of Pairwise: it adds the mutual
// fields of two disjoint particle sets to both sides, with the (y-x)/r^3
// convention of Accelerations. The force pair is equal and opposite, so one
// kernel evaluation (one reciprocal distance cube) serves both boxes. The
// serial near-field sweep visits each unordered box pair once with this
// kernel, halving the evaluated pair count relative to the one-sided form
// (which parallel sweeps need for race freedom). The sets must not alias.
func PairwiseForce(posA []geom.Vec3, qA []float64, accA []geom.Vec3, posB []geom.Vec3, qB []float64, accB []geom.Vec3) {
	kernels.PairwiseForce(posA, qA, accA, posB, qB, accB)
}
