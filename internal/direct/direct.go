// Package direct implements O(N^2) direct evaluation of Newtonian/Coulombic
// potentials and accelerations. It serves three roles in the reproduction:
// the accuracy ground truth against which the hierarchical solvers are
// measured, the near-field kernel of the O(N) method (step 5 of the generic
// hierarchical algorithm), and the trivial baseline in the Table 1
// comparison.
//
// The potential convention is phi(x) = sum_j q_j / |x - y_j| and the
// acceleration of a unit-mass particle is a(x) = -grad phi for charges, or
// equivalently the gravitational field with G = 1 and attractive sign
// handled by the caller's choice of charge signs.
package direct

import (
	"math"

	"nbody/internal/blas"
	"nbody/internal/geom"
	"nbody/internal/kernels"
)

// Potentials returns phi[i] = sum_{j != i} q[j] / |pos[i]-pos[j]|, computed
// serially with the naive double loop. It is the reference implementation;
// everything else in the package must agree with it. Coincident particle
// pairs (zero distance) are treated like self-interactions and skipped, so
// degenerate inputs yield finite potentials instead of Inf/NaN.
func Potentials(pos []geom.Vec3, q []float64) []float64 {
	phi := make([]float64, len(pos))
	for i := range pos {
		var s float64
		for j := range pos {
			if i == j {
				continue
			}
			if r := pos[i].Dist(pos[j]); r > 0 {
				s += q[j] / r
			}
		}
		phi[i] = s
	}
	return phi
}

// pairTile is the blocking factor of the tiled O(N^2) sweeps: a tile of
// positions plus charges is 256 * (24 + 8) = 8 KB, so the j-tile stays L1
// resident while a whole i-block streams against it.
const pairTile = 256

// PotentialsSymmetric returns the same result as Potentials using Newton's
// third law: each pair is visited once, its reciprocal distance is computed
// once, and it contributes to both endpoints, halving the operation count
// (the optimization of Section 3.4 applied at particle granularity, as in
// Applegate et al.). The triangle is swept in pairTile blocks — diagonal
// tiles via Within, off-diagonal via Pairwise — so both sides of each tile
// pair stay cache resident instead of streaming the full arrays per row.
func PotentialsSymmetric(pos []geom.Vec3, q []float64) []float64 {
	phi := make([]float64, len(pos))
	n := len(pos)
	for ib := 0; ib < n; ib += pairTile {
		ie := ib + pairTile
		if ie > n {
			ie = n
		}
		Within(pos[ib:ie], q[ib:ie], phi[ib:ie])
		for jb := ie; jb < n; jb += pairTile {
			je := jb + pairTile
			if je > n {
				je = n
			}
			Pairwise(pos[ib:ie], q[ib:ie], phi[ib:ie], pos[jb:je], q[jb:je], phi[jb:je])
		}
	}
	return phi
}

// PotentialsParallel computes Potentials with rows distributed over the
// available cores. The row decomposition writes disjoint phi entries, so no
// synchronization is needed.
func PotentialsParallel(pos []geom.Vec3, q []float64) []float64 {
	phi := make([]float64, len(pos))
	blas.Parallel(len(pos), func(i int) {
		var s float64
		pi := pos[i]
		for j := range pos {
			if i == j {
				continue
			}
			if r := pi.Dist(pos[j]); r > 0 {
				s += q[j] / r
			}
		}
		phi[i] = s
	})
	return phi
}

// Accelerations returns a[i] = sum_{j != i} q[j] (y_j - x_i) / |y_j - x_i|^3,
// the field -grad phi for the 1/r potential (attractive for positive q,
// i.e. the gravitational convention with masses as charges).
func Accelerations(pos []geom.Vec3, q []float64) []geom.Vec3 {
	acc := make([]geom.Vec3, len(pos))
	n := len(pos)
	nb := (n + pairTile - 1) / pairTile
	// i-blocks are distributed over the pool (disjoint acc rows, no
	// synchronization); each block sweeps the sources one j-tile at a time
	// so the tile stays cache resident across the block's rows. The
	// self-exclusion branch only runs inside the diagonal tile.
	blas.Parallel(nb, func(bi int) {
		ib := bi * pairTile
		ie := ib + pairTile
		if ie > n {
			ie = n
		}
		for jb := 0; jb < n; jb += pairTile {
			je := jb + pairTile
			if je > n {
				je = n
			}
			for i := ib; i < ie; i++ {
				pi := pos[i]
				a := acc[i]
				if i >= jb && i < je {
					for j := jb; j < je; j++ {
						if i == j {
							continue
						}
						d := pos[j].Sub(pi)
						r2 := d.Norm2()
						if r2 == 0 {
							continue // coincident particles: self-exclusion, not Inf
						}
						inv := 1 / (r2 * math.Sqrt(r2))
						a = a.Add(d.Scale(q[j] * inv))
					}
				} else {
					for j := jb; j < je; j++ {
						d := pos[j].Sub(pi)
						r2 := d.Norm2()
						if r2 == 0 {
							continue
						}
						inv := 1 / (r2 * math.Sqrt(r2))
						a = a.Add(d.Scale(q[j] * inv))
					}
				}
				acc[i] = a
			}
		}
	})
	return acc
}

// PotentialAt returns the potential at an arbitrary point x due to all
// particles (no self-exclusion). Used for field probes and for evaluating
// outer approximations' ground truth.
func PotentialAt(x geom.Vec3, pos []geom.Vec3, q []float64) float64 {
	var s float64
	for j := range pos {
		s += q[j] / x.Dist(pos[j])
	}
	return s
}

// Pairwise computes the mutual interaction between two disjoint particle
// sets, accumulating potentials on both sides (the box-box near-field
// kernel with Newton's third law, Figure 10). The two slices must not
// alias. The inner loop lives in internal/kernels, shared with the
// hierarchical solvers' near fields.
func Pairwise(posA []geom.Vec3, qA, phiA []float64, posB []geom.Vec3, qB, phiB []float64) {
	kernels.Pairwise(posA, qA, phiA, posB, qB, phiB)
}

// Within accumulates the interactions among the particles of one set into
// phi (the intra-box term of the near field).
func Within(pos []geom.Vec3, q, phi []float64) {
	kernels.Within(pos, q, phi)
}

// FlopsPerPair is the conventional floating-point operation count charged
// per particle-particle interaction in the N-body literature (distance,
// inverse square root, accumulate); the paper's efficiency bookkeeping for
// the direct part uses the same convention.
const FlopsPerPair = 9

// PotentialEnergy returns U = (1/2) sum_i q_i phi_i for a set of computed
// potentials.
func PotentialEnergy(q, phi []float64) float64 {
	var u float64
	for i := range q {
		u += q[i] * phi[i]
	}
	return u / 2
}
