package direct

import (
	"math"
	"math/rand"
	"testing"

	"nbody/internal/geom"
)

func randomSystem(rng *rand.Rand, n int) ([]geom.Vec3, []float64) {
	pos := make([]geom.Vec3, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		q[i] = rng.Float64()*2 - 1
	}
	return pos, q
}

func TestPotentialsTwoBody(t *testing.T) {
	pos := []geom.Vec3{{X: 0}, {X: 2}}
	q := []float64{3, 5}
	phi := Potentials(pos, q)
	if math.Abs(phi[0]-2.5) > 1e-15 || math.Abs(phi[1]-1.5) > 1e-15 {
		t.Errorf("phi = %v", phi)
	}
}

func TestSymmetricMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pos, q := randomSystem(rng, 200)
	a := Potentials(pos, q)
	b := PotentialsSymmetric(pos, q)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-10*(1+math.Abs(a[i])) {
			t.Fatalf("mismatch at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestParallelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pos, q := randomSystem(rng, 300)
	a := Potentials(pos, q)
	b := PotentialsParallel(pos, q)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12*(1+math.Abs(a[i])) {
			t.Fatalf("mismatch at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestAccelerationsMatchPotentialGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pos, q := randomSystem(rng, 50)
	acc := Accelerations(pos, q)
	// Finite-difference the potential field at particle 0 (excluding self).
	h := 1e-6
	probe := func(x geom.Vec3) float64 {
		var s float64
		for j := 1; j < len(pos); j++ {
			s += q[j] / x.Dist(pos[j])
		}
		return s
	}
	p := pos[0]
	grad := geom.Vec3{
		X: (probe(geom.Vec3{X: p.X + h, Y: p.Y, Z: p.Z}) - probe(geom.Vec3{X: p.X - h, Y: p.Y, Z: p.Z})) / (2 * h),
		Y: (probe(geom.Vec3{X: p.X, Y: p.Y + h, Z: p.Z}) - probe(geom.Vec3{X: p.X, Y: p.Y - h, Z: p.Z})) / (2 * h),
		Z: (probe(geom.Vec3{X: p.X, Y: p.Y, Z: p.Z + h}) - probe(geom.Vec3{X: p.X, Y: p.Y, Z: p.Z - h})) / (2 * h),
	}
	// a = +grad phi with the (y-x)/r^3 convention used here... verify sign
	// and value against the finite difference of sum q/r, whose gradient is
	// sum q (y-x)/r^3.
	if acc[0].Sub(grad).Norm() > 1e-4*(1+grad.Norm()) {
		t.Errorf("acc[0] = %v, FD grad = %v", acc[0], grad)
	}
}

func TestPotentialAt(t *testing.T) {
	pos := []geom.Vec3{{X: 1}}
	q := []float64{2}
	if got := PotentialAt(geom.Vec3{X: 3}, pos, q); math.Abs(got-1) > 1e-15 {
		t.Errorf("PotentialAt = %g", got)
	}
}

func TestPairwisePlusWithinEqualsFull(t *testing.T) {
	// Splitting a system into two boxes and using Pairwise + Within must
	// reproduce the full direct sum: this is the correctness of the
	// symmetric near-field scheme.
	rng := rand.New(rand.NewSource(34))
	pos, q := randomSystem(rng, 120)
	nA := 50
	phiA := make([]float64, nA)
	phiB := make([]float64, len(pos)-nA)
	Pairwise(pos[:nA], q[:nA], phiA, pos[nA:], q[nA:], phiB)
	Within(pos[:nA], q[:nA], phiA)
	Within(pos[nA:], q[nA:], phiB)
	want := Potentials(pos, q)
	for i := 0; i < nA; i++ {
		if math.Abs(phiA[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("A mismatch at %d", i)
		}
	}
	for i := nA; i < len(pos); i++ {
		if math.Abs(phiB[i-nA]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("B mismatch at %d", i)
		}
	}
}

func TestPotentialEnergyPairIdentity(t *testing.T) {
	// For two unit charges at distance r, U = 1/r.
	pos := []geom.Vec3{{}, {X: 4}}
	q := []float64{1, 1}
	phi := Potentials(pos, q)
	if got := PotentialEnergy(q, phi); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("U = %g, want 0.25", got)
	}
}

func TestChargeNeutralFarField(t *testing.T) {
	// A dipole's far potential decays like 1/r^2: sanity check that the
	// physics conventions here behave as expected (used by accuracy tests
	// downstream).
	pos := []geom.Vec3{{X: 0.01}, {X: -0.01}}
	q := []float64{1, -1}
	near := PotentialAt(geom.Vec3{X: 1}, pos, q)
	far := PotentialAt(geom.Vec3{X: 2}, pos, q)
	ratio := near / far
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("dipole decay ratio = %g, want ~4", ratio)
	}
}
