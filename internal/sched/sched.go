// Package sched provides the repository's shared compute scheduler: a
// persistent pool of worker goroutines with atomic work-stealing chunk
// claiming. It replaces the earlier per-call goroutine spawning in
// blas.Parallel, which paid a goroutine create/destroy plus a mutex-guarded
// work index on every box sweep — measurable overhead on the traversal hot
// path the paper's Section 3.3.3 efficiency numbers depend on.
//
// Design:
//
//   - Workers are created once (lazily, on the first parallel call) and
//     live for the life of the process, parked on a job channel between
//     calls. Pool size is GOMAXPROCS at first use.
//
//   - Work distribution is dynamic: participants claim contiguous index
//     chunks from an atomic counter. The chunk size adapts to the iteration
//     count (several chunks per worker), so sweeps with highly non-uniform
//     per-index cost — e.g. box arrays where most leaves are empty — do not
//     suffer the load imbalance of one static chunk per worker, while
//     cheap uniform sweeps still amortize the atomic increment.
//
//   - The submitting goroutine always participates in its own job, so a
//     parallel region completes even if every pool worker is busy in
//     another job. In particular, nested Run calls cannot deadlock: the
//     nested caller simply executes its job itself.
//
// Failure containment:
//
//   - A panic raised by the body on any participant (pool worker or the
//     submitting caller) aborts the job: remaining chunks are abandoned,
//     every in-flight participant is drained, and the first panic value is
//     re-raised on the submitting goroutine. Pool workers survive the
//     panic and return to the job channel, so a contained failure in one
//     parallel region never wedges later regions.
//
//   - RunCtx/RunChunksCtx accept a context whose cancellation is checked
//     in the chunk-claim loop of every participant: a canceled context
//     stops the job within one chunk's work and the call returns ctx.Err().
//
//   - In both cases Run*/submit return only after no participant is still
//     executing the body (the drain guarantee): callers may immediately
//     reuse the buffers the body wrote without synchronization.
//
// On a single-core machine (Workers() == 1) every call degenerates to a
// plain serial loop with no synchronization and no allocation.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// chunksPerWorker controls adaptive chunking: each participant should get
// several chunks so dynamic claiming can rebalance uneven work, but not so
// many that the atomic counter becomes contended. 8 keeps the claim
// overhead under ~1% for the repository's box sweeps while still splitting
// a level-4 sweep (4096 boxes) into 1/8-worker-sized pieces. It also sets
// the cancellation granularity: a canceled context is noticed at the next
// chunk boundary.
const chunksPerWorker = 8

// panicBox carries the first recovered panic of a job back to the
// submitting goroutine, with the stack of the participant that raised it.
type panicBox struct {
	val   any
	stack []byte
}

// job is one parallel region. Participants (the caller plus any pool
// workers that pick the job up) claim [lo, hi) chunks from next until the
// range is exhausted or the job aborts; completion (or fully drained
// abortion) closes fin.
type job struct {
	fnIdx   func(i int)
	fnChunk func(lo, hi int)
	n       int64
	chunk   int64
	next    atomic.Int64
	done    atomic.Int64

	// ctx is the optional cancellation signal; nil jobs (Run/RunChunks)
	// pay only a nil compare per chunk claim.
	ctx context.Context

	// aborted stops further chunk claiming after a panic or cancellation.
	aborted atomic.Bool
	// inflight counts participants currently inside participate; the last
	// one to leave an aborted job closes fin, which is what lets submit
	// guarantee no participant still runs the body after it returns.
	inflight atomic.Int64
	// panicVal holds the first recovered panic (CAS winner).
	panicVal atomic.Pointer[panicBox]

	finOnce sync.Once
	fin     chan struct{}
}

// finish signals job completion exactly once, whether by normal range
// exhaustion or by a drained abort.
func (j *job) finish() { j.finOnce.Do(func() { close(j.fin) }) }

var (
	initOnce sync.Once
	poolSize int
	jobs     chan *job
)

// initPool sizes and starts the worker pool. Workers run forever; each
// blocks on the job channel between parallel regions. A panic inside a job
// body is recovered in participate, so workers are never lost to one.
func initPool() {
	poolSize = runtime.GOMAXPROCS(0)
	if poolSize < 1 {
		poolSize = 1
	}
	counters = make([]workerCounters, poolSize)
	if poolSize == 1 {
		return
	}
	// The channel is buffered generously so wake-up sends never block even
	// when stale wake-ups (for jobs that finished before a worker got to
	// them) are still queued; a stale wake-up is a cheap no-op.
	jobs = make(chan *job, 8*poolSize)
	for w := 1; w < poolSize; w++ {
		go func(slot int) {
			// Label the worker so CPU profiles attribute pool time to the
			// scheduler and to the individual worker slot.
			labels := pprof.Labels("pool", "sched", "worker", fmt.Sprint(slot))
			pprof.Do(context.Background(), labels, func(context.Context) {
				for j := range jobs {
					j.participate(slot)
				}
			})
		}(w)
	}
}

// Workers returns the pool size (GOMAXPROCS at first use). Callers sizing
// per-worker scratch should use MaxParticipants.
func Workers() int {
	initOnce.Do(initPool)
	return poolSize
}

// MaxParticipants bounds the number of goroutines that can execute chunks
// of one job concurrently: every pool worker plus the submitting caller.
func MaxParticipants() int { return Workers() + 1 }

// Run executes fn(i) for every i in [0, n), distributing index chunks over
// the worker pool. fn must be safe to call concurrently for distinct i.
// Equivalent to the old blas.Parallel contract. If fn panics on any
// participant, the job is aborted and drained and the first panic value is
// re-raised on the caller.
func Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if Workers() == 1 || n == 1 {
		if statsOn.Load() {
			defer chargeSerial(now())
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	submit(&job{fnIdx: fn, n: int64(n)})
}

// RunChunks executes body(lo, hi) over a partition of [0, n) into
// contiguous chunks, distributing chunks over the worker pool. It is the
// preferred form when the body wants per-chunk setup (scratch buffers,
// local accumulators) amortized over many indices. Panic semantics match
// Run.
func RunChunks(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if Workers() == 1 {
		if statsOn.Load() {
			defer chargeSerial(now())
		}
		body(0, n)
		return
	}
	submit(&job{fnChunk: body, n: int64(n)})
}

// RunCtx is Run with cooperative cancellation: every participant checks
// ctx in its chunk-claim loop, so a canceled context stops the job within
// one chunk's work and RunCtx returns ctx.Err(). Indices not yet claimed
// when the job aborts are never executed; the caller must treat any output
// of a canceled region as garbage. A nil ctx is equivalent to Run.
func RunCtx(ctx context.Context, n int, fn func(i int)) error {
	if ctx == nil {
		Run(n, fn)
		return nil
	}
	if n <= 0 {
		return nil
	}
	if Workers() == 1 || n == 1 {
		return runSerialCtx(ctx, n, fn, nil)
	}
	return submit(&job{fnIdx: fn, n: int64(n), ctx: ctx})
}

// RunChunksCtx is RunChunks with cooperative cancellation, under the same
// contract as RunCtx. The serial degenerate case still partitions [0, n)
// into several chunks so cancellation latency stays bounded by one chunk.
func RunChunksCtx(ctx context.Context, n int, body func(lo, hi int)) error {
	if ctx == nil {
		RunChunks(n, body)
		return nil
	}
	if n <= 0 {
		return nil
	}
	if Workers() == 1 {
		return runSerialCtx(ctx, n, nil, body)
	}
	return submit(&job{fnChunk: body, n: int64(n), ctx: ctx})
}

// runSerialCtx executes a cancellable region on the caller alone, checking
// ctx between chunks of the same adaptive size a one-worker pool would use.
func runSerialCtx(ctx context.Context, n int, fnIdx func(i int), fnChunk func(lo, hi int)) error {
	if statsOn.Load() {
		defer chargeSerial(now())
	}
	chunk := (n + chunksPerWorker - 1) / chunksPerWorker
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < n; lo += chunk {
		if err := ctx.Err(); err != nil {
			return err
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if fnChunk != nil {
			fnChunk(lo, hi)
		} else {
			for i := lo; i < hi; i++ {
				fnIdx(i)
			}
		}
	}
	return nil
}

// submit sizes the job's chunks, wakes enough workers, participates, and
// waits until the job has completed or has aborted with every participant
// drained. A contained panic is re-raised here on the submitting
// goroutine; a cancellation returns ctx.Err().
func submit(j *job) error {
	nchunks := int64(poolSize * chunksPerWorker)
	j.chunk = (j.n + nchunks - 1) / nchunks
	if j.chunk < 1 {
		j.chunk = 1
	}
	j.fin = make(chan struct{})
	// Wake at most as many workers as there are chunks beyond the one the
	// caller will take itself.
	wake := int((j.n + j.chunk - 1) / j.chunk)
	if wake > poolSize-1 {
		wake = poolSize - 1
	}
wakeLoop:
	for w := 0; w < wake; w++ {
		select {
		case jobs <- j:
		default:
			// Queue full: workers are saturated; the caller still
			// completes the job on its own.
			break wakeLoop
		}
	}
	j.participate(0)
	<-j.fin
	if pb := j.panicVal.Load(); pb != nil {
		// Re-raise the first panic of the region on the submitting
		// goroutine (the participant's stack was captured in pb.stack for
		// debuggers; the value itself is what callers recover).
		panic(pb.val)
	}
	if j.aborted.Load() && j.ctx != nil {
		return j.ctx.Err()
	}
	return nil
}

// participate runs the job on behalf of one participant, containing any
// panic the body raises: the first panic is recorded, the job aborts, and
// the last participant to leave an aborted job closes fin. Pool workers
// call it from their job loop, the submitting caller from submit; either
// way the goroutine survives the panic.
func (j *job) participate(slot int) {
	j.inflight.Add(1)
	defer func() {
		if r := recover(); r != nil {
			j.panicVal.CompareAndSwap(nil, &panicBox{val: r, stack: debug.Stack()})
			j.aborted.Store(true)
		}
		if j.inflight.Add(-1) == 0 && j.aborted.Load() {
			j.finish()
		}
	}()
	j.runTimed(slot)
}

// run claims and executes chunks until the job's range is exhausted or the
// job aborts, returning the number of indices this participant executed.
// The participant whose chunk completes the range signals fin exactly once
// (done is incremented by exact chunk sizes, so only one participant can
// observe done == n). Aborted jobs signal fin from participate instead,
// once every in-flight participant has drained.
func (j *job) run() int64 {
	var total int64
	for {
		if j.aborted.Load() {
			break
		}
		if j.ctx != nil && j.ctx.Err() != nil {
			j.aborted.Store(true)
			break
		}
		lo := j.next.Add(j.chunk) - j.chunk
		if lo >= j.n {
			break
		}
		hi := lo + j.chunk
		if hi > j.n {
			hi = j.n
		}
		if j.fnChunk != nil {
			j.fnChunk(int(lo), int(hi))
		} else {
			fn := j.fnIdx
			for i := lo; i < hi; i++ {
				fn(int(i))
			}
		}
		total += hi - lo
	}
	if total > 0 && j.done.Add(total) == j.n {
		j.finish()
	}
	return total
}
