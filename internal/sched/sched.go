// Package sched provides the repository's shared compute scheduler: a
// persistent pool of worker goroutines with atomic work-stealing chunk
// claiming. It replaces the earlier per-call goroutine spawning in
// blas.Parallel, which paid a goroutine create/destroy plus a mutex-guarded
// work index on every box sweep — measurable overhead on the traversal hot
// path the paper's Section 3.3.3 efficiency numbers depend on.
//
// Design:
//
//   - Workers are created once (lazily, on the first parallel call) and
//     live for the life of the process, parked on a job channel between
//     calls. Pool size is GOMAXPROCS at first use.
//
//   - Work distribution is dynamic: participants claim contiguous index
//     chunks from an atomic counter. The chunk size adapts to the iteration
//     count (several chunks per worker), so sweeps with highly non-uniform
//     per-index cost — e.g. box arrays where most leaves are empty — do not
//     suffer the load imbalance of one static chunk per worker, while
//     cheap uniform sweeps still amortize the atomic increment.
//
//   - The submitting goroutine always participates in its own job, so a
//     parallel region completes even if every pool worker is busy in
//     another job. In particular, nested Run calls cannot deadlock: the
//     nested caller simply executes its job itself.
//
// On a single-core machine (Workers() == 1) every call degenerates to a
// plain serial loop with no synchronization and no allocation.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// chunksPerWorker controls adaptive chunking: each participant should get
// several chunks so dynamic claiming can rebalance uneven work, but not so
// many that the atomic counter becomes contended. 8 keeps the claim
// overhead under ~1% for the repository's box sweeps while still splitting
// a level-4 sweep (4096 boxes) into 1/8-worker-sized pieces.
const chunksPerWorker = 8

// job is one parallel region. Participants (the caller plus any pool
// workers that pick the job up) claim [lo, hi) chunks from next until the
// range is exhausted; the participant that completes the final index
// signals fin.
type job struct {
	fnIdx   func(i int)
	fnChunk func(lo, hi int)
	n       int64
	chunk   int64
	next    atomic.Int64
	done    atomic.Int64
	fin     chan struct{}
}

var (
	initOnce sync.Once
	poolSize int
	jobs     chan *job
)

// initPool sizes and starts the worker pool. Workers run forever; each
// blocks on the job channel between parallel regions.
func initPool() {
	poolSize = runtime.GOMAXPROCS(0)
	if poolSize < 1 {
		poolSize = 1
	}
	counters = make([]workerCounters, poolSize)
	if poolSize == 1 {
		return
	}
	// The channel is buffered generously so wake-up sends never block even
	// when stale wake-ups (for jobs that finished before a worker got to
	// them) are still queued; a stale wake-up is a cheap no-op.
	jobs = make(chan *job, 8*poolSize)
	for w := 1; w < poolSize; w++ {
		go func(slot int) {
			// Label the worker so CPU profiles attribute pool time to the
			// scheduler and to the individual worker slot.
			labels := pprof.Labels("pool", "sched", "worker", fmt.Sprint(slot))
			pprof.Do(context.Background(), labels, func(context.Context) {
				for j := range jobs {
					j.runTimed(slot)
				}
			})
		}(w)
	}
}

// Workers returns the pool size (GOMAXPROCS at first use). Callers sizing
// per-worker scratch should use MaxParticipants.
func Workers() int {
	initOnce.Do(initPool)
	return poolSize
}

// MaxParticipants bounds the number of goroutines that can execute chunks
// of one job concurrently: every pool worker plus the submitting caller.
func MaxParticipants() int { return Workers() + 1 }

// Run executes fn(i) for every i in [0, n), distributing index chunks over
// the worker pool. fn must be safe to call concurrently for distinct i.
// Equivalent to the old blas.Parallel contract.
func Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if Workers() == 1 || n == 1 {
		if statsOn.Load() {
			defer chargeSerial(now())
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	submit(&job{fnIdx: fn, n: int64(n)})
}

// RunChunks executes body(lo, hi) over a partition of [0, n) into
// contiguous chunks, distributing chunks over the worker pool. It is the
// preferred form when the body wants per-chunk setup (scratch buffers,
// local accumulators) amortized over many indices.
func RunChunks(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if Workers() == 1 {
		if statsOn.Load() {
			defer chargeSerial(now())
		}
		body(0, n)
		return
	}
	submit(&job{fnChunk: body, n: int64(n)})
}

// submit sizes the job's chunks, wakes enough workers, participates, and
// waits for completion.
func submit(j *job) {
	nchunks := int64(poolSize * chunksPerWorker)
	j.chunk = (j.n + nchunks - 1) / nchunks
	if j.chunk < 1 {
		j.chunk = 1
	}
	j.fin = make(chan struct{}, 1)
	// Wake at most as many workers as there are chunks beyond the one the
	// caller will take itself.
	wake := int((j.n + j.chunk - 1) / j.chunk)
	if wake > poolSize-1 {
		wake = poolSize - 1
	}
	for w := 0; w < wake; w++ {
		select {
		case jobs <- j:
		default:
			w = wake // queue full: workers are saturated; caller still completes the job
		}
	}
	j.runTimed(0)
	<-j.fin
}

// run claims and executes chunks until the job's range is exhausted,
// returning the number of indices this participant executed. The
// participant whose chunk completes the range signals fin exactly once
// (done is incremented by exact chunk sizes, so only one participant can
// observe done == n).
func (j *job) run() int64 {
	var total int64
	for {
		lo := j.next.Add(j.chunk) - j.chunk
		if lo >= j.n {
			break
		}
		hi := lo + j.chunk
		if hi > j.n {
			hi = j.n
		}
		if j.fnChunk != nil {
			j.fnChunk(int(lo), int(hi))
		} else {
			fn := j.fnIdx
			for i := lo; i < hi; i++ {
				fn(int(i))
			}
		}
		total += hi - lo
	}
	if total > 0 && j.done.Add(total) == j.n {
		j.fin <- struct{}{}
	}
	return total
}
