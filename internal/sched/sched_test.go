package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMain forces a multi-worker pool before its lazy first-use sizing:
// the CI container is single-core, and with GOMAXPROCS=1 every call takes
// the serial fast path, leaving the pool, panic-containment, and drain
// logic untested.
func TestMain(m *testing.M) {
	runtime.GOMAXPROCS(4)
	m.Run()
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000, 4097} {
		hits := make([]int32, n)
		Run(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, h)
			}
		}
	}
}

func TestRunChunksPartitionsRange(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 65, 1000} {
		hits := make([]int32, n)
		var calls int32
		RunChunks(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("n=%d: bad chunk [%d, %d)", n, lo, hi)
			}
			atomic.AddInt32(&calls, 1)
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, h)
			}
		}
		if calls == 0 {
			t.Fatalf("n=%d: no chunks executed", n)
		}
	}
}

func TestNestedRunCompletes(t *testing.T) {
	var total int64
	Run(8, func(i int) {
		Run(16, func(j int) { atomic.AddInt64(&total, 1) })
	})
	if total != 8*16 {
		t.Fatalf("nested total = %d, want %d", total, 8*16)
	}
}

func TestConcurrentRuns(t *testing.T) {
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Run(1000, func(i int) { atomic.AddInt64(&total, 1) })
		}()
	}
	wg.Wait()
	if total != 8*1000 {
		t.Fatalf("concurrent total = %d, want %d", total, 8*1000)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
	if MaxParticipants() != Workers()+1 {
		t.Fatalf("MaxParticipants() = %d, want %d", MaxParticipants(), Workers()+1)
	}
}

// TestFullQueueCompletesOnCaller reproduces the wake-loop bug: with every
// pool worker blocked in another job and the job queue full, submit's wake
// sends all hit the default case, and the early exit must break out of the
// loop so the caller completes the job alone rather than mis-iterating.
func TestFullQueueCompletesOnCaller(t *testing.T) {
	if Workers() == 1 {
		t.Skip("needs a worker pool")
	}
	gate := make(chan struct{})
	var blocked atomic.Int32
	blockers := make([]*job, Workers()-1)
	for i := range blockers {
		b := &job{n: 1, chunk: 1, fin: make(chan struct{})}
		b.fnIdx = func(int) {
			blocked.Add(1)
			<-gate
		}
		blockers[i] = b
		jobs <- b
	}
	for blocked.Load() != int32(len(blockers)) {
		runtime.Gosched()
	}
	// Every worker is now parked inside a blocker; stuff the queue full of
	// stale no-op jobs so the next submit's wake sends cannot land.
	var stale int
fill:
	for {
		select {
		case jobs <- &job{fin: make(chan struct{})}:
			stale++
		default:
			break fill
		}
	}
	if stale != cap(jobs) {
		t.Fatalf("filled %d jobs, want capacity %d", stale, cap(jobs))
	}

	done := make(chan struct{})
	hits := make([]int32, 1000)
	go func() {
		defer close(done)
		Run(len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung with a full job queue")
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d executed %d times", i, h)
		}
	}

	close(gate)
	for _, b := range blockers {
		<-b.fin
	}
	// Let the workers chew through the stale jobs before other tests rely
	// on wake-ups landing.
	for len(jobs) > 0 {
		runtime.Gosched()
	}
}

// TestPanicReRaisedOnCaller: a body panic on any participant must surface
// as a panic on the submitting goroutine with the original value, and the
// pool must keep working afterwards.
func TestPanicReRaisedOnCaller(t *testing.T) {
	for _, form := range []string{"run", "chunks"} {
		got := func() (r any) {
			defer func() { r = recover() }()
			if form == "run" {
				Run(1000, func(i int) {
					if i == 417 {
						panic("boom-417")
					}
				})
			} else {
				RunChunks(1000, func(lo, hi int) {
					if lo <= 417 && 417 < hi {
						panic("boom-417")
					}
				})
			}
			return nil
		}()
		if got != "boom-417" {
			t.Fatalf("%s: recovered %v, want boom-417", form, got)
		}
		// Pool survives: a fresh region still covers every index.
		var total int64
		Run(500, func(int) { atomic.AddInt64(&total, 1) })
		if total != 500 {
			t.Fatalf("%s: post-panic Run covered %d/500", form, total)
		}
	}
}

// TestPanicOnEveryParticipant: all participants panic concurrently; exactly
// one value is re-raised and submit does not hang on fin.
func TestPanicOnEveryParticipant(t *testing.T) {
	got := func() (r any) {
		defer func() { r = recover() }()
		Run(10000, func(i int) { panic(i) })
		return nil
	}()
	if _, ok := got.(int); !ok {
		t.Fatalf("recovered %T(%v), want an index", got, got)
	}
}

// TestDrainAfterPanic verifies the drain guarantee: once Run has re-raised
// a panic, no participant is still executing the body, so the caller may
// immediately reuse the body's buffers without synchronization. Run under
// -race this fails loudly if a straggler is still writing.
func TestDrainAfterPanic(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		buf := make([]int, 4096)
		func() {
			defer func() { recover() }()
			Run(len(buf), func(i int) {
				buf[i] = i
				if i == 2048 {
					panic("abort")
				}
			})
		}()
		// Unsynchronized reuse: legal only if the job fully drained.
		for i := range buf {
			buf[i] = -1
		}
	}
}

func TestRunCtxNilAndBackground(t *testing.T) {
	var total int64
	if err := RunCtx(nil, 1000, func(int) { atomic.AddInt64(&total, 1) }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	if err := RunCtx(context.Background(), 1000, func(int) { atomic.AddInt64(&total, 1) }); err != nil {
		t.Fatalf("background ctx: %v", err)
	}
	if total != 2000 {
		t.Fatalf("total = %d, want 2000", total)
	}
	if err := RunChunksCtx(context.Background(), 1000, func(lo, hi int) {
		atomic.AddInt64(&total, int64(hi-lo))
	}); err != nil {
		t.Fatalf("chunks background ctx: %v", err)
	}
	if total != 3000 {
		t.Fatalf("total = %d, want 3000", total)
	}
}

func TestRunCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	err := RunCtx(ctx, 100000, func(int) { atomic.AddInt64(&ran, 1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d indices ran under a pre-canceled context", ran)
	}
	err = RunChunksCtx(ctx, 100000, func(lo, hi int) { atomic.AddInt64(&ran, 1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("chunks err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d chunks ran under a pre-canceled context", ran)
	}
}

// TestRunCtxCancelMidway cancels from inside the body and checks the region
// stops within one chunk per participant instead of finishing the range.
func TestRunCtxCancelMidway(t *testing.T) {
	const n = 1 << 20
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int64
	err := RunCtx(ctx, n, func(i int) {
		if atomic.AddInt64(&ran, 1) == 100 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each participant may finish the chunk it already claimed; nothing
	// beyond one chunk each may run after the cancel.
	limit := int64(MaxParticipants()) * int64(n/chunksPerWorker+1)
	if got := atomic.LoadInt64(&ran); got >= n || got > 100+limit {
		t.Fatalf("ran %d of %d indices after cancel (limit %d)", got, n, 100+limit)
	}
}

func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := RunChunksCtx(ctx, 1<<16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			time.Sleep(10 * time.Microsecond)
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// 2^16 indices at 10us each would be ~0.65s serial; cancellation must
	// cut that to roughly one chunk per participant.
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancellation took %v", el)
	}
}

// TestCtxErrorPropagatesCustomCause: whatever ctx.Err() reports is what the
// call returns.
func TestCtxErrorPropagatesCustomCause(t *testing.T) {
	cause := fmt.Errorf("budget exhausted")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	err := RunCtx(ctx, 1000, func(int) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := context.Cause(ctx); !errors.Is(c, cause) {
		t.Fatalf("cause = %v, want %v", c, cause)
	}
}

func BenchmarkRunEmpty4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Run(4096, func(int) {})
	}
}

func BenchmarkRunChunksEmpty4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunChunks(4096, func(lo, hi int) {})
	}
}
