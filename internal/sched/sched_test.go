package sched

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000, 4097} {
		hits := make([]int32, n)
		Run(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, h)
			}
		}
	}
}

func TestRunChunksPartitionsRange(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 65, 1000} {
		hits := make([]int32, n)
		var calls int32
		RunChunks(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("n=%d: bad chunk [%d, %d)", n, lo, hi)
			}
			atomic.AddInt32(&calls, 1)
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d covered %d times", n, i, h)
			}
		}
		if calls == 0 {
			t.Fatalf("n=%d: no chunks executed", n)
		}
	}
}

func TestNestedRunCompletes(t *testing.T) {
	var total int64
	Run(8, func(i int) {
		Run(16, func(j int) { atomic.AddInt64(&total, 1) })
	})
	if total != 8*16 {
		t.Fatalf("nested total = %d, want %d", total, 8*16)
	}
}

func TestConcurrentRuns(t *testing.T) {
	var wg sync.WaitGroup
	var total int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Run(1000, func(i int) { atomic.AddInt64(&total, 1) })
		}()
	}
	wg.Wait()
	if total != 8*1000 {
		t.Fatalf("concurrent total = %d, want %d", total, 8*1000)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
	if MaxParticipants() != Workers()+1 {
		t.Fatalf("MaxParticipants() = %d, want %d", MaxParticipants(), Workers()+1)
	}
}

func BenchmarkRunEmpty4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Run(4096, func(int) {})
	}
}

func BenchmarkRunChunksEmpty4096(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunChunks(4096, func(lo, hi int) {})
	}
}
