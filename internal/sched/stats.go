package sched

import (
	"sync/atomic"
	"time"
)

// WorkerStat is the accumulated utilization of one pool participant. Slot 0
// is the submitting goroutine (whoever calls Run/RunChunks participates in
// its own job); slots 1..Workers()-1 are the pool workers.
type WorkerStat struct {
	Slot int           `json:"slot"`
	Busy time.Duration `json:"busy_ns"`
	Jobs int64         `json:"jobs"`
}

// workerCounters is one participant's counters, padded to a cache line so
// concurrent workers do not false-share.
type workerCounters struct {
	busy atomic.Int64
	jobs atomic.Int64
	_    [48]byte
}

var (
	statsOn  atomic.Bool
	counters []workerCounters
)

// EnableStats switches per-worker utilization accounting on or off. Off
// (the default) costs one predictable branch per parallel region; on, each
// participant pays two time.Now calls and two atomic adds per job — still
// negligible against any job worth parallelizing.
func EnableStats(on bool) {
	initOnce.Do(initPool)
	statsOn.Store(on)
}

// ResetStats zeroes the per-worker counters.
func ResetStats() {
	for i := range counters {
		counters[i].busy.Store(0)
		counters[i].jobs.Store(0)
	}
}

// ReadStats returns the per-participant utilization accumulated since the
// last reset. The slice is freshly allocated; slot i of the result is
// participant i.
func ReadStats() []WorkerStat {
	initOnce.Do(initPool)
	out := make([]WorkerStat, len(counters))
	for i := range counters {
		out[i] = WorkerStat{
			Slot: i,
			Busy: time.Duration(counters[i].busy.Load()),
			Jobs: counters[i].jobs.Load(),
		}
	}
	return out
}

// now is time.Now, split out so the serial fast path can defer-charge
// without evaluating it when stats are off.
func now() time.Time { return time.Now() }

// chargeSerial charges a serial-degenerate parallel region (pool size 1,
// or a single-index Run) to slot 0.
func chargeSerial(start time.Time) {
	counters[0].busy.Add(int64(time.Since(start)))
	counters[0].jobs.Add(1)
}

// runTimed executes the job on behalf of participant slot, charging its
// wall time when stats are enabled. Jobs that were already drained (stale
// wake-ups claim no chunks) are not counted.
func (j *job) runTimed(slot int) {
	if !statsOn.Load() {
		j.run()
		return
	}
	start := time.Now()
	n := j.run()
	if n > 0 {
		counters[slot].busy.Add(int64(time.Since(start)))
		counters[slot].jobs.Add(1)
	}
}
