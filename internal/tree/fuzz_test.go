package tree

import (
	"math"
	"testing"

	"nbody/internal/geom"
)

// FuzzLeafOf drives the leaf partitioning with arbitrary coordinates —
// including NaN, infinities, and points far outside the domain — and
// checks the invariants every caller relies on: no panic, box indices in
// [0, 2^depth) on every axis, and in-domain points landing in a leaf box
// that geometrically contains them (up to one representable rounding step
// at box faces).
func FuzzLeafOf(f *testing.F) {
	f.Add(0.5, 0.5, 0.5, uint8(3))
	f.Add(0.0, 1.0, 0.9999, uint8(5))
	f.Add(-1.0, 2.0, 0.5, uint8(2))
	f.Add(math.Inf(1), math.Inf(-1), math.NaN(), uint8(4))
	f.Add(1e-300, 1e300, -0.0, uint8(6))
	f.Fuzz(func(t *testing.T, x, y, z float64, depthRaw uint8) {
		depth := 2 + int(depthRaw%5) // 2..6
		h, err := NewHierarchy(geom.Box3{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}, depth)
		if err != nil {
			t.Fatal(err)
		}
		p := geom.Vec3{X: x, Y: y, Z: z}
		c := h.LeafOf(p)
		n := h.GridSize(depth)
		if c.X < 0 || c.X >= n || c.Y < 0 || c.Y >= n || c.Z < 0 || c.Z >= n {
			t.Fatalf("LeafOf(%v) depth %d = %v out of [0,%d)", p, depth, c, n)
		}
		inDomain := x >= 0 && x <= 1 && y >= 0 && y <= 1 && z >= 0 && z <= 1
		if inDomain {
			box := h.Box(depth, c)
			half := box.Side/2 + box.Side*1e-9
			if math.Abs(x-box.Center.X) > half || math.Abs(y-box.Center.Y) > half ||
				math.Abs(z-box.Center.Z) > half {
				t.Fatalf("LeafOf(%v) = %v but box %v does not contain the point", p, c, box)
			}
		}
	})
}

// FuzzInteractiveOffsets checks the interactive-field enumeration for
// arbitrary separations and octants: offsets unique, outside the near
// field, inside the 2d+1 bound, and the union of all octants matching
// UnionInteractiveOffsets — the counting identities the T2 phase and the
// supernode decomposition depend on.
func FuzzInteractiveOffsets(f *testing.F) {
	f.Add(uint8(2), uint8(0))
	f.Add(uint8(1), uint8(7))
	f.Add(uint8(3), uint8(5))
	f.Fuzz(func(t *testing.T, dRaw, octRaw uint8) {
		d := 1 + int(dRaw%3) // 1..3
		oct := int(octRaw % 8)
		b := InteractiveOffsetBound(d)
		offs := InteractiveOffsets(d, oct)
		seen := make(map[geom.Coord3]bool, len(offs))
		for _, o := range offs {
			if seen[o] {
				t.Fatalf("d=%d oct=%d: duplicate offset %v", d, oct, o)
			}
			seen[o] = true
			cheb := o.ChebDist(geom.Coord3{})
			if cheb <= d {
				t.Fatalf("d=%d oct=%d: offset %v inside the near field", d, oct, o)
			}
			if cheb > b {
				t.Fatalf("d=%d oct=%d: offset %v beyond bound %d", d, oct, o, b)
			}
		}
		// Every interactive offset of every octant is in the union list.
		union := make(map[geom.Coord3]bool)
		for _, o := range UnionInteractiveOffsets(d) {
			union[o] = true
		}
		for o := range seen {
			if !union[o] {
				t.Fatalf("d=%d oct=%d: offset %v missing from union", d, oct, o)
			}
		}
	})
}
