package tree

import (
	"testing"

	"nbody/internal/geom"
)

func TestNewHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(geom.Box3{Side: 1}, 1); err == nil {
		t.Error("depth 1 accepted")
	}
	if _, err := NewHierarchy(geom.Box3{Side: 0}, 3); err == nil {
		t.Error("zero side accepted")
	}
	h, err := NewHierarchy(geom.Box3{Side: 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.GridSize(3) != 8 || h.NumBoxes(3) != 512 || h.BoxSide(3) != 0.25 {
		t.Errorf("level-3 geometry wrong: %d %d %g", h.GridSize(3), h.NumBoxes(3), h.BoxSide(3))
	}
}

func TestHierarchyBoxAndLeafOfAgree(t *testing.T) {
	h, _ := NewHierarchy(geom.Box3{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}, 4)
	p := geom.Vec3{X: 0.3, Y: 0.72, Z: 0.11}
	c := h.LeafOf(p)
	if !h.Box(h.Depth, c).Contains(p) {
		t.Errorf("leaf box of %v does not contain it", p)
	}
}

func TestNearOffsetsCounts(t *testing.T) {
	// (2d+1)^3 - 1: d=1 -> 26, d=2 -> 124 (the paper's two-separation count).
	if got := len(NearOffsets(1)); got != 26 {
		t.Errorf("d=1 near offsets = %d, want 26", got)
	}
	if got := len(NearOffsets(2)); got != 124 {
		t.Errorf("d=2 near offsets = %d, want 124", got)
	}
}

func TestNearOffsetsContent(t *testing.T) {
	for _, o := range NearOffsets(2) {
		if o == (geom.Coord3{}) {
			t.Fatal("self offset included")
		}
		if o.ChebDist(geom.Coord3{}) > 2 {
			t.Fatalf("offset %v outside near field", o)
		}
	}
}

func TestHalfNearOffsets(t *testing.T) {
	// 62 for d=2 (the paper's Newton's-third-law count), and together with
	// their negations they reconstruct the full set.
	half := HalfNearOffsets(2)
	if len(half) != 62 {
		t.Fatalf("half near offsets = %d, want 62", len(half))
	}
	seen := make(map[geom.Coord3]bool)
	for _, o := range half {
		neg := geom.Coord3{X: -o.X, Y: -o.Y, Z: -o.Z}
		if seen[neg] {
			t.Fatalf("offset %v and its negation both in half set", o)
		}
		seen[o] = true
	}
	full := NearOffsets(2)
	reconstructed := make(map[geom.Coord3]bool)
	for _, o := range half {
		reconstructed[o] = true
		reconstructed[geom.Coord3{X: -o.X, Y: -o.Y, Z: -o.Z}] = true
	}
	if len(reconstructed) != len(full) {
		t.Fatalf("half set + negations cover %d offsets, want %d", len(reconstructed), len(full))
	}
}

func TestInteractiveOffsetsCount(t *testing.T) {
	// The paper: 7(2d+1)^3 interactive-field boxes; 875 for d=2, 189 for d=1.
	for _, d := range []int{1, 2, 3} {
		want := 7 * (2*d + 1) * (2*d + 1) * (2*d + 1)
		for oct := 0; oct < 8; oct++ {
			if got := len(InteractiveOffsets(d, oct)); got != want {
				t.Errorf("d=%d oct=%d: %d offsets, want %d", d, oct, got, want)
			}
		}
	}
}

func TestInteractiveOffsetsDisjointFromNearField(t *testing.T) {
	for oct := 0; oct < 8; oct++ {
		for _, o := range InteractiveOffsets(2, oct) {
			if o.ChebDist(geom.Coord3{}) <= 2 {
				t.Fatalf("oct %d: interactive offset %v inside near field", oct, o)
			}
		}
	}
}

func TestInteractiveOffsetsAreParentNearFieldChildren(t *testing.T) {
	// Every interactive box's parent must be in the target's parent's near
	// field (including the parent itself for octant-internal geometry).
	d := 2
	// Place the target at an interior coordinate so parents are exact.
	target := geom.Coord3{X: 16, Y: 16, Z: 16}
	for oct := 0; oct < 8; oct++ {
		tc := geom.Coord3{X: target.X*2 + oct&1, Y: target.Y*2 + oct>>1&1, Z: target.Z*2 + oct>>2&1}
		for _, o := range InteractiveOffsets(d, oct) {
			b := tc.Add(o)
			if b.Parent().ChebDist(tc.Parent()) > d {
				t.Fatalf("oct %d: interactive box %v has parent outside parent near field", oct, o)
			}
		}
	}
}

func TestInteractiveOffsetBound(t *testing.T) {
	d := 2
	bound := InteractiveOffsetBound(d)
	if bound != 5 {
		t.Fatalf("bound = %d, want 5", bound)
	}
	for oct := 0; oct < 8; oct++ {
		for _, o := range InteractiveOffsets(d, oct) {
			if o.ChebDist(geom.Coord3{}) > bound {
				t.Fatalf("offset %v exceeds bound %d", o, bound)
			}
		}
	}
}

func TestUnionInteractiveOffsets(t *testing.T) {
	// 1206 for d=2 (paper Section 3.3.2): 11^3 - 5^3.
	got := UnionInteractiveOffsets(2)
	if len(got) != 1206 {
		t.Errorf("union = %d offsets, want 1206", len(got))
	}
}

func TestSupernodeDecompositionCounts(t *testing.T) {
	// d=2: 98 parent supernodes + 91 leftover children = 189 effective
	// translations (paper Section 2.3).
	for oct := 0; oct < 8; oct++ {
		sn := SupernodeDecomposition(2, oct)
		if len(sn.ParentOffsets) != 98 {
			t.Errorf("oct %d: %d parent offsets, want 98", oct, len(sn.ParentOffsets))
		}
		if len(sn.ChildOffsets) != 91 {
			t.Errorf("oct %d: %d child offsets, want 91", oct, len(sn.ChildOffsets))
		}
	}
}

func TestSupernodeDecompositionCoversInteractiveField(t *testing.T) {
	// The union of the supernodes' children and the leftover child offsets
	// must be exactly the interactive field.
	for oct := 0; oct < 8; oct++ {
		ix, iy, iz := oct&1, oct>>1&1, oct>>2&1
		sn := SupernodeDecomposition(2, oct)
		covered := make(map[geom.Coord3]bool)
		for _, p := range sn.ParentOffsets {
			for oz := 0; oz < 2; oz++ {
				for oy := 0; oy < 2; oy++ {
					for ox := 0; ox < 2; ox++ {
						c := geom.Coord3{
							X: 2*p.X - ix + ox,
							Y: 2*p.Y - iy + oy,
							Z: 2*p.Z - iz + oz,
						}
						if covered[c] {
							t.Fatalf("oct %d: child %v covered twice", oct, c)
						}
						covered[c] = true
					}
				}
			}
		}
		for _, c := range sn.ChildOffsets {
			if covered[c] {
				t.Fatalf("oct %d: child %v covered twice", oct, c)
			}
			covered[c] = true
		}
		want := InteractiveOffsets(2, oct)
		if len(covered) != len(want) {
			t.Fatalf("oct %d: covered %d, want %d", oct, len(covered), len(want))
		}
		for _, o := range want {
			if !covered[o] {
				t.Fatalf("oct %d: interactive offset %v not covered", oct, o)
			}
		}
	}
}

func TestSupernodeParentsWellSeparated(t *testing.T) {
	// Every supernode parent must be outside the target's parent (its own
	// children never include the target's near cube), and at parent
	// Chebyshev distance exactly 2 on at least one axis for d=2.
	for oct := 0; oct < 8; oct++ {
		sn := SupernodeDecomposition(2, oct)
		for _, p := range sn.ParentOffsets {
			if p.ChebDist(geom.Coord3{}) != 2 {
				t.Errorf("oct %d: parent offset %v has Chebyshev distance %d, want 2",
					oct, p, p.ChebDist(geom.Coord3{}))
			}
		}
	}
}
