package tree

import (
	"fmt"

	"nbody/internal/geom"
)

// Hierarchy2 is the 2-D (quadtree) analogue of Hierarchy, used by the 2-D
// variant of Anderson's method. The paper stresses that the 2-D and 3-D
// codes are nearly identical; keeping the two hierarchies structurally
// parallel preserves that property here.
type Hierarchy2 struct {
	Root  geom.Box2
	Depth int
}

// NewHierarchy2 validates and returns a 2-D hierarchy.
func NewHierarchy2(root geom.Box2, depth int) (Hierarchy2, error) {
	if depth < 2 {
		return Hierarchy2{}, fmt.Errorf("tree: depth %d < 2", depth)
	}
	if root.Side <= 0 {
		return Hierarchy2{}, fmt.Errorf("tree: nonpositive root side %g", root.Side)
	}
	return Hierarchy2{Root: root, Depth: depth}, nil
}

// GridSize returns the boxes-per-axis extent 2^level.
func (h Hierarchy2) GridSize(level int) int { return 1 << level }

// NumBoxes returns the number of boxes at a level, 4^level.
func (h Hierarchy2) NumBoxes(level int) int { n := h.GridSize(level); return n * n }

// BoxSide returns the side length of boxes at a level.
func (h Hierarchy2) BoxSide(level int) float64 { return h.Root.Side / float64(h.GridSize(level)) }

// Box returns the geometric square of box c at a level.
func (h Hierarchy2) Box(level int, c geom.Coord2) geom.Box2 {
	return geom.BoxCenter2(c, h.Root, level)
}

// LeafOf returns the leaf-level coordinate of the box containing p.
func (h Hierarchy2) LeafOf(p geom.Vec2) geom.Coord2 {
	return geom.BoxOf2(p, h.Root, h.Depth)
}

// NearOffsets2 returns the d-separation near field offsets in 2-D:
// (2d+1)^2 - 1 offsets.
func NearOffsets2(d int) []geom.Coord2 {
	offs := make([]geom.Coord2, 0, (2*d+1)*(2*d+1)-1)
	for y := -d; y <= d; y++ {
		for x := -d; x <= d; x++ {
			if x == 0 && y == 0 {
				continue
			}
			offs = append(offs, geom.Coord2{X: x, Y: y})
		}
	}
	return offs
}

// HalfNearOffsets2 returns one offset per symmetric pair of NearOffsets2(d).
func HalfNearOffsets2(d int) []geom.Coord2 {
	all := NearOffsets2(d)
	half := make([]geom.Coord2, 0, len(all)/2)
	for _, o := range all {
		if o.Y > 0 || (o.Y == 0 && o.X > 0) {
			half = append(half, o)
		}
	}
	return half
}

// Supernodes2 is the 2-D supernode decomposition: for d = 2, the 75
// interactive-field translations per box reduce to 16 parent-granularity
// plus 11 child-granularity, an effective count of 27 (the same reduction
// factor the paper reports in 3-D, 875 -> 189).
type Supernodes2 struct {
	ParentOffsets []geom.Coord2 // at the PARENT level, relative to the child's parent
	ChildOffsets  []geom.Coord2 // at the child's level, relative to the child
}

// SupernodeDecomposition2 computes the 2-D decomposition for one quadrant
// under d-separation.
func SupernodeDecomposition2(d, quadrant int) Supernodes2 {
	ix, iy := quadrant&1, quadrant>>1&1
	var sn Supernodes2
	for ty := -d; ty <= d; ty++ {
		for tx := -d; tx <= d; tx++ {
			var children []geom.Coord2
			anyNear := false
			for oy := 0; oy < 2; oy++ {
				for ox := 0; ox < 2; ox++ {
					c := geom.Coord2{X: 2*tx - ix + ox, Y: 2*ty - iy + oy}
					if c.ChebDist(geom.Coord2{}) <= d {
						anyNear = true
					} else {
						children = append(children, c)
					}
				}
			}
			if !anyNear && len(children) == 4 {
				sn.ParentOffsets = append(sn.ParentOffsets, geom.Coord2{X: tx, Y: ty})
			} else {
				sn.ChildOffsets = append(sn.ChildOffsets, children...)
			}
		}
	}
	return sn
}

// InteractiveOffsets2 returns the interactive-field offsets of a child box
// of the given quadrant under d-separation: (4d+2)^2 - (2d+1)^2 offsets
// (75 for d=2, the 2-D analogue of the paper's 875).
func InteractiveOffsets2(d, quadrant int) []geom.Coord2 {
	ix, iy := quadrant&1, quadrant>>1&1
	var offs []geom.Coord2
	for ty := -d; ty <= d; ty++ {
		for tx := -d; tx <= d; tx++ {
			for oy := 0; oy < 2; oy++ {
				for ox := 0; ox < 2; ox++ {
					c := geom.Coord2{X: 2*tx - ix + ox, Y: 2*ty - iy + oy}
					if c.ChebDist(geom.Coord2{}) <= d {
						continue
					}
					offs = append(offs, c)
				}
			}
		}
	}
	return offs
}
