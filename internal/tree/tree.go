// Package tree implements the non-adaptive spatial hierarchy of the O(N)
// methods (Section 2.1 of Hu & Johnsson SC'96): the recursive decomposition
// of a cubic domain into 8^l boxes per level, the d-separation near field,
// the interactive field, and the supernode decomposition that reduces the
// interactive-field translation count in three dimensions from 875 to 189.
//
// The hierarchy is "flattened": a level is just its grid extent, and boxes
// are integer coordinates (geom.Coord3) into per-level arrays. This mirrors
// the paper's embedding of the whole hierarchy into slices of 4-D arrays and
// is what both the shared-memory and data-parallel solvers index against.
package tree

import (
	"fmt"

	"nbody/internal/geom"
)

// Hierarchy describes a non-adaptive 3-D hierarchy of Depth+1 levels: level
// 0 is the root box, level Depth is the leaf level with 8^Depth boxes.
type Hierarchy struct {
	Root  geom.Box3
	Depth int
}

// NewHierarchy validates and returns a hierarchy.
func NewHierarchy(root geom.Box3, depth int) (Hierarchy, error) {
	if depth < 2 {
		// T2 is first applied at level 2 (the paper's downward pass starts
		// at l=2); shallower hierarchies degenerate to direct evaluation.
		return Hierarchy{}, fmt.Errorf("tree: depth %d < 2", depth)
	}
	if root.Side <= 0 {
		return Hierarchy{}, fmt.Errorf("tree: nonpositive root side %g", root.Side)
	}
	return Hierarchy{Root: root, Depth: depth}, nil
}

// GridSize returns the boxes-per-axis extent 2^level.
func (h Hierarchy) GridSize(level int) int { return 1 << level }

// NumBoxes returns the number of boxes at a level, 8^level.
func (h Hierarchy) NumBoxes(level int) int { n := h.GridSize(level); return n * n * n }

// BoxSide returns the side length of boxes at a level.
func (h Hierarchy) BoxSide(level int) float64 { return h.Root.Side / float64(h.GridSize(level)) }

// Box returns the geometric cube of box c at a level.
func (h Hierarchy) Box(level int, c geom.Coord3) geom.Box3 {
	return geom.BoxCenter3(c, h.Root, level)
}

// LeafOf returns the leaf-level coordinate of the box containing p.
func (h Hierarchy) LeafOf(p geom.Vec3) geom.Coord3 {
	return geom.BoxOf3(p, h.Root, h.Depth)
}

// NearOffsets returns the relative coordinates of the d-separation near
// field: all nonzero offsets with Chebyshev norm <= d, (2d+1)^3 - 1 of them.
func NearOffsets(d int) []geom.Coord3 {
	offs := make([]geom.Coord3, 0, (2*d+1)*(2*d+1)*(2*d+1)-1)
	for z := -d; z <= d; z++ {
		for y := -d; y <= d; y++ {
			for x := -d; x <= d; x++ {
				if x == 0 && y == 0 && z == 0 {
					continue
				}
				offs = append(offs, geom.Coord3{X: x, Y: y, Z: z})
			}
		}
	}
	return offs
}

// HalfNearOffsets returns one offset per symmetric pair of NearOffsets(d):
// the (2d+1)^3/2 offsets that are lexicographically positive. Traversing
// only these and applying Newton's third law halves the near-field box-box
// interactions (124 -> 62 for d=2), the symmetry optimization of Section
// 3.4 / Figure 10.
func HalfNearOffsets(d int) []geom.Coord3 {
	all := NearOffsets(d)
	half := make([]geom.Coord3, 0, len(all)/2)
	for _, o := range all {
		if o.Z > 0 || (o.Z == 0 && (o.Y > 0 || (o.Y == 0 && o.X > 0))) {
			half = append(half, o)
		}
	}
	return half
}

// InteractiveOffsets returns, for a child box of the given octant (see
// geom.Coord3.Octant), the relative offsets at the child's level of its
// interactive field under d-separation: children of the parent's near-field
// boxes that are not in the child's own near field. For d=2 there are 875
// per octant (the paper's N_int for interior boxes).
func InteractiveOffsets(d, octant int) []geom.Coord3 {
	ix, iy, iz := octant&1, octant>>1&1, octant>>2&1
	var offs []geom.Coord3
	for tz := -d; tz <= d; tz++ {
		for ty := -d; ty <= d; ty++ {
			for tx := -d; tx <= d; tx++ {
				// Parent offset (tx,ty,tz); its 8 children sit at child
				// offsets 2t - i + {0,1} along each axis.
				for oz := 0; oz < 2; oz++ {
					for oy := 0; oy < 2; oy++ {
						for ox := 0; ox < 2; ox++ {
							c := geom.Coord3{
								X: 2*tx - ix + ox,
								Y: 2*ty - iy + oy,
								Z: 2*tz - iz + oz,
							}
							if c.ChebDist(geom.Coord3{}) <= d {
								continue // own near field (or self)
							}
							offs = append(offs, c)
						}
					}
				}
			}
		}
	}
	return offs
}

// InteractiveOffsetBound returns the largest absolute child-level offset
// that can occur in any octant's interactive field: 2d+1. The union of all
// octants' interactive fields lies in [-(2d+1), 2d+1]^3, the 1331-box cube
// (for d=2) the paper generates T2 matrices over for ease of indexing.
func InteractiveOffsetBound(d int) int { return 2*d + 1 }

// UnionInteractiveOffsets returns the union over all eight octants of the
// interactive-field offsets: 1206 offsets for d=2 (the paper's count).
func UnionInteractiveOffsets(d int) []geom.Coord3 {
	seen := make(map[geom.Coord3]bool)
	var offs []geom.Coord3
	for oct := 0; oct < 8; oct++ {
		for _, o := range InteractiveOffsets(d, oct) {
			if !seen[o] {
				seen[o] = true
				offs = append(offs, o)
			}
		}
	}
	return offs
}

// Supernodes describes the supernode decomposition of a child box's
// interactive field (Section 2.3): parent-level source boxes whose eight
// children all lie in the interactive field are handled by a single
// parent-granularity translation; the remaining child boxes individually.
// For d=2 this yields 98 parent offsets and 91 child offsets per octant,
// the paper's effective N_int of 189.
type Supernodes struct {
	// ParentOffsets are offsets at the PARENT level, relative to the child
	// box's parent.
	ParentOffsets []geom.Coord3
	// ChildOffsets are offsets at the child's level, relative to the child.
	ChildOffsets []geom.Coord3
}

// SupernodeDecomposition computes the decomposition for one octant under
// d-separation.
func SupernodeDecomposition(d, octant int) Supernodes {
	ix, iy, iz := octant&1, octant>>1&1, octant>>2&1
	var sn Supernodes
	for tz := -d; tz <= d; tz++ {
		for ty := -d; ty <= d; ty++ {
			for tx := -d; tx <= d; tx++ {
				// Child offsets of this parent's 8 children.
				var children []geom.Coord3
				anyNear := false
				for oz := 0; oz < 2; oz++ {
					for oy := 0; oy < 2; oy++ {
						for ox := 0; ox < 2; ox++ {
							c := geom.Coord3{
								X: 2*tx - ix + ox,
								Y: 2*ty - iy + oy,
								Z: 2*tz - iz + oz,
							}
							if c.ChebDist(geom.Coord3{}) <= d {
								anyNear = true
							} else {
								children = append(children, c)
							}
						}
					}
				}
				switch {
				case !anyNear && len(children) == 8:
					sn.ParentOffsets = append(sn.ParentOffsets, geom.Coord3{X: tx, Y: ty, Z: tz})
				default:
					sn.ChildOffsets = append(sn.ChildOffsets, children...)
				}
			}
		}
	}
	return sn
}
