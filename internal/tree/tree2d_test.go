package tree

import (
	"testing"

	"nbody/internal/geom"
)

func TestNewHierarchy2Validation(t *testing.T) {
	if _, err := NewHierarchy2(geom.Box2{Side: 1}, 0); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := NewHierarchy2(geom.Box2{Side: -1}, 3); err == nil {
		t.Error("negative side accepted")
	}
	h, err := NewHierarchy2(geom.Box2{Side: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.GridSize(2) != 4 || h.NumBoxes(2) != 16 || h.BoxSide(2) != 1 {
		t.Errorf("geometry wrong: %d %d %g", h.GridSize(2), h.NumBoxes(2), h.BoxSide(2))
	}
}

func TestHierarchy2LeafOf(t *testing.T) {
	h, _ := NewHierarchy2(geom.Box2{Center: geom.Vec2{X: 0, Y: 0}, Side: 2}, 3)
	p := geom.Vec2{X: -0.9, Y: 0.9}
	c := h.LeafOf(p)
	if !h.Box(h.Depth, c).Contains(p) {
		t.Errorf("leaf box of %v does not contain it", p)
	}
}

func TestNearOffsets2Counts(t *testing.T) {
	if got := len(NearOffsets2(1)); got != 8 {
		t.Errorf("d=1: %d, want 8", got)
	}
	if got := len(NearOffsets2(2)); got != 24 {
		t.Errorf("d=2: %d, want 24", got)
	}
}

func TestHalfNearOffsets2(t *testing.T) {
	half := HalfNearOffsets2(2)
	if len(half) != 12 {
		t.Fatalf("half = %d, want 12", len(half))
	}
	recon := make(map[geom.Coord2]bool)
	for _, o := range half {
		recon[o] = true
		recon[geom.Coord2{X: -o.X, Y: -o.Y}] = true
	}
	if len(recon) != 24 {
		t.Errorf("half + negations = %d, want 24", len(recon))
	}
}

func TestInteractiveOffsets2Count(t *testing.T) {
	// (4d+2)^2 - (2d+1)^2 = 3(2d+1)^2: 27 for d=1, 75 for d=2.
	for _, d := range []int{1, 2} {
		want := 3 * (2*d + 1) * (2*d + 1)
		for q := 0; q < 4; q++ {
			if got := len(InteractiveOffsets2(d, q)); got != want {
				t.Errorf("d=%d q=%d: %d, want %d", d, q, got, want)
			}
		}
	}
}

func TestInteractiveOffsets2DisjointFromNear(t *testing.T) {
	for q := 0; q < 4; q++ {
		for _, o := range InteractiveOffsets2(2, q) {
			if o.ChebDist(geom.Coord2{}) <= 2 {
				t.Fatalf("q=%d: offset %v in near field", q, o)
			}
		}
	}
}

func TestSupernodeDecomposition2Counts(t *testing.T) {
	// d=2 in 2-D: 16 parent supernodes + 11 leftover children = 27
	// effective translations (vs 75), the 2-D analogue of 875 -> 189.
	for qd := 0; qd < 4; qd++ {
		sn := SupernodeDecomposition2(2, qd)
		if len(sn.ParentOffsets) != 16 {
			t.Errorf("qd %d: %d parent offsets, want 16", qd, len(sn.ParentOffsets))
		}
		if len(sn.ChildOffsets) != 11 {
			t.Errorf("qd %d: %d child offsets, want 11", qd, len(sn.ChildOffsets))
		}
	}
}

func TestSupernodeDecomposition2Covers(t *testing.T) {
	for qd := 0; qd < 4; qd++ {
		ix, iy := qd&1, qd>>1&1
		sn := SupernodeDecomposition2(2, qd)
		covered := map[geom.Coord2]bool{}
		for _, p := range sn.ParentOffsets {
			for oy := 0; oy < 2; oy++ {
				for ox := 0; ox < 2; ox++ {
					c := geom.Coord2{X: 2*p.X - ix + ox, Y: 2*p.Y - iy + oy}
					if covered[c] {
						t.Fatalf("qd %d: %v covered twice", qd, c)
					}
					covered[c] = true
				}
			}
		}
		for _, c := range sn.ChildOffsets {
			if covered[c] {
				t.Fatalf("qd %d: %v covered twice", qd, c)
			}
			covered[c] = true
		}
		want := InteractiveOffsets2(2, qd)
		if len(covered) != len(want) {
			t.Fatalf("qd %d: covered %d, want %d", qd, len(covered), len(want))
		}
		for _, o := range want {
			if !covered[o] {
				t.Fatalf("qd %d: %v not covered", qd, o)
			}
		}
	}
}
