package dpfmm

import (
	"nbody/internal/direct"
	"nbody/internal/dp"
	"nbody/internal/geom"
	"nbody/internal/kernels"
	"nbody/internal/metrics"
)

// nearFieldSymmetric evaluates the near field with Newton's third law, the
// paper's Figure 10 scheme: the 4-D particle arrays travel through HALF the
// near-field offsets (62 for two-separation) together with an accumulator
// array; at each alignment each box adds the traveling box's contribution
// to its own potentials AND deposits the reciprocal contribution into the
// traveling accumulator, which is finally shifted home and folded in. This
// halves the pairwise arithmetic at the cost of shifting one extra array.
func (s *Solver) nearFieldSymmetric(pg *particleGrid) {
	n := pg.count.N
	d := s.Cfg.Separation
	eff := s.M.Cost.DirectEfficiency
	layout := pg.count.Layout

	// Intra-box interactions (same as the one-sided path).
	var pairs int64
	pg.count.ForEachBox(func(c geom.Coord3, cv []float64) {
		cnt := int(cv[0])
		if cnt < 2 {
			return
		}
		xs, ys, zs := pg.px.At(c), pg.py.At(c), pg.pz.At(c)
		qs, phi := pg.pq.At(c), pg.phi.At(c)
		kernels.WithinPotentialSoA(xs[:cnt], ys[:cnt], zs[:cnt], qs[:cnt], phi[:cnt])
		s.M.ChargeCompute(layout.VUOf(c), int64(cnt)*int64(cnt-1)/2*direct.FlopsPerPair, eff)
		atomicAdd(&pairs, int64(cnt)*int64(cnt-1)/2)
	})

	// Traveling copies: particle attributes plus the reciprocal-potential
	// accumulator (zeroed; same shape as phi).
	tx, ty, tz := pg.px.Clone(), pg.py.Clone(), pg.pz.Clone()
	tq, tc := pg.pq.Clone(), pg.count.Clone()
	tphi := s.M.NewGrid3(n, pg.cap)

	shiftAll := func(axis dp.Axis, step int) {
		tx = tx.CShift(axis, step)
		ty = ty.CShift(axis, step)
		tz = tz.CShift(axis, step)
		tq = tq.CShift(axis, step)
		tc = tc.CShift(axis, step)
		tphi = tphi.CShift(axis, step)
	}

	cur := geom.Coord3{}
	for _, cell := range halfSnakeCells(d) {
		for cur != cell {
			var axis dp.Axis
			var step int
			switch {
			case cur.X != cell.X:
				axis, step = dp.AxisX, sign(cell.X-cur.X)
				cur.X += step
			case cur.Y != cell.Y:
				axis, step = dp.AxisY, sign(cell.Y-cur.Y)
				cur.Y += step
			default:
				axis, step = dp.AxisZ, sign(cell.Z-cur.Z)
				cur.Z += step
			}
			shiftAll(axis, step)
		}
		v := cur
		pg.count.ForEachBox(func(c geom.Coord3, cv []float64) {
			cnt := int(cv[0])
			if cnt == 0 || !c.Add(v).In(n) {
				return
			}
			scnt := int(tc.At(c)[0])
			if scnt == 0 {
				return
			}
			xs, ys, zs := pg.px.At(c), pg.py.At(c), pg.pz.At(c)
			qs, phi := pg.pq.At(c), pg.phi.At(c)
			sx, sy, sz := tx.At(c), ty.At(c), tz.At(c)
			sq, sphi := tq.At(c), tphi.At(c)
			kernels.PairwisePotentialSoA(xs[:cnt], ys[:cnt], zs[:cnt], qs[:cnt], phi[:cnt],
				sx[:scnt], sy[:scnt], sz[:scnt], sq[:scnt], sphi[:scnt])
			s.M.ChargeCompute(layout.VUOf(c), int64(cnt)*int64(scnt)*direct.FlopsPerPair, eff)
			atomicAdd(&pairs, int64(cnt)*int64(scnt))
		})
	}
	s.rec.AddNearPairs(pairs)
	s.rec.AddFlops(metrics.PhaseNear, pairs*direct.FlopsPerPair)

	// Bring the accumulator home: the traveling arrays are aligned at
	// offset cur, so tphi[c] holds contributions for the particles of box
	// c+cur; shift by -cur (one CSHIFT per axis) and fold in.
	if cur.X != 0 {
		tphi = tphi.CShift(dp.AxisX, -cur.X)
	}
	if cur.Y != 0 {
		tphi = tphi.CShift(dp.AxisY, -cur.Y)
	}
	if cur.Z != 0 {
		tphi = tphi.CShift(dp.AxisZ, -cur.Z)
	}
	pg.phi.Add(tphi)
}

// halfSnakeCells enumerates one offset of every +/- pair of the near-field
// cube [-d, d]^3 \ {0} — the lexicographically positive half (z > 0, or
// z = 0 and y > 0, or z = y = 0 and x > 0) — in a unit-step order. The
// region is a stack of full slabs above a half slab, so a boustrophedon
// walk covers it with unit steps.
func halfSnakeCells(d int) []geom.Coord3 {
	var cells []geom.Coord3
	// z = 0 half-slab: the x > 0 ray of y = 0, then full rows y = 1..d.
	for x := 1; x <= d; x++ {
		cells = append(cells, geom.Coord3{X: x, Y: 0, Z: 0})
	}
	for y := 1; y <= d; y++ {
		for i := 0; i <= 2*d; i++ {
			x := -d + i
			if y%2 == 1 {
				x = d - i
			}
			cells = append(cells, geom.Coord3{X: x, Y: y, Z: 0})
		}
	}
	// Full slabs z = 1..d.
	for z := 1; z <= d; z++ {
		for iy := 0; iy <= 2*d; iy++ {
			y := -d + iy
			if z%2 == 0 {
				y = d - iy
			}
			for ix := 0; ix <= 2*d; ix++ {
				x := -d + ix
				if (z+iy)%2 == 0 {
					x = d - ix
				}
				cells = append(cells, geom.Coord3{X: x, Y: y, Z: z})
			}
		}
	}
	return cells
}
