package dpfmm

import (
	"math"
	"math/rand"
	"testing"

	"nbody/internal/core"
	"nbody/internal/direct"
	"nbody/internal/geom"
)

func TestDataParallelAccelerations(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	pos, q := uniformParticles(rng, 900)
	m := newTestMachine(t, 4)
	s, err := NewSolver(m, unitBox(), core.Config{Degree: 9, Depth: 3}, DirectAliased)
	if err != nil {
		t.Fatal(err)
	}
	phi, acc, err := s.Accelerations(pos, q)
	if err != nil {
		t.Fatal(err)
	}

	wantPhi := direct.PotentialsParallel(pos, q)
	var rms, mean float64
	for i := range phi {
		d := phi[i] - wantPhi[i]
		rms += d * d
		mean += math.Abs(wantPhi[i])
	}
	rms = math.Sqrt(rms / float64(len(phi)))
	mean /= float64(len(phi))
	if rms/mean > 1e-4 {
		t.Errorf("potential error %.2e", rms/mean)
	}

	wantAcc := direct.Accelerations(pos, q)
	var arms, amean float64
	for i := range acc {
		arms += acc[i].Sub(wantAcc[i]).Norm2()
		amean += wantAcc[i].Norm()
	}
	arms = math.Sqrt(arms / float64(len(acc)))
	amean /= float64(len(acc))
	if arms/amean > 2e-3 {
		t.Errorf("acceleration error %.2e relative to mean", arms/amean)
	}
}

func TestDataParallelAccelerationsMatchSharedMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	pos, q := uniformParticles(rng, 600)
	cfg := core.Config{Degree: 5, Depth: 3}

	ref, err := core.NewSolver(unitBox(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, wantAcc, err := ref.Accelerations(pos, q)
	if err != nil {
		t.Fatal(err)
	}

	m := newTestMachine(t, 2)
	s, err := NewSolver(m, unitBox(), cfg, LinearizedAliased)
	if err != nil {
		t.Fatal(err)
	}
	_, acc, err := s.Accelerations(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range acc {
		if acc[i].Sub(wantAcc[i]).Norm() > 1e-9*(1+wantAcc[i].Norm()) {
			t.Fatalf("acceleration mismatch at %d: %v vs %v", i, acc[i], wantAcc[i])
		}
	}
}

func TestAccelerationsRejectBadInput(t *testing.T) {
	m := newTestMachine(t, 2)
	s, err := NewSolver(m, unitBox(), core.Config{Degree: 5, Depth: 2}, DirectAliased)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Accelerations(make([]geom.Vec3, 2), make([]float64, 1)); err == nil {
		t.Error("mismatched input accepted")
	}
}
