package dpfmm

import (
	"testing"

	"nbody/internal/core"
	"nbody/internal/dp"
)

func TestPrecomputeStrategiesOrdering(t *testing.T) {
	// Figures 8 and 9: computing in parallel followed by replication beats
	// computing everything on every VU, and grouping reduces the
	// replication cost further.
	m, err := dp.NewMachine(64, 4, dp.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Degree: 5, Depth: 3}

	all, err := PrecomputeInteractive(m, cfg, ComputeEverywhere)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := PrecomputeInteractive(m, cfg, ComputeAndReplicate)
	if err != nil {
		t.Fatal(err)
	}
	if all.Matrices != 1331 || rep.Matrices != 1331 {
		t.Fatalf("matrix counts: %d, %d", all.Matrices, rep.Matrices)
	}
	if rep.TotalCycles() >= all.TotalCycles() {
		t.Errorf("replicate (%.3g cycles) not cheaper than compute-everywhere (%.3g)",
			rep.TotalCycles(), all.TotalCycles())
	}
	if rep.CommCycles == 0 || all.CommCycles != 0 {
		t.Errorf("comm cycles: replicate %.3g, all %.3g", rep.CommCycles, all.CommCycles)
	}
}

func TestPrecomputeGroupedReducesReplication(t *testing.T) {
	m, err := dp.NewMachine(64, 4, dp.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Degree: 5, Depth: 3}
	rep, err := PrecomputeParentChild(m, cfg, ComputeAndReplicate)
	if err != nil {
		t.Fatal(err)
	}
	grp, err := PrecomputeParentChild(m, cfg, ComputeAndReplicateGrouped)
	if err != nil {
		t.Fatal(err)
	}
	if grp.CommCycles >= rep.CommCycles {
		t.Errorf("grouped replication (%.3g) not cheaper than full (%.3g)",
			grp.CommCycles, rep.CommCycles)
	}
	// Same compute either way (one matrix per VU in the group).
	if grp.ComputeCycles != rep.ComputeCycles {
		t.Errorf("compute differs: %.3g vs %.3g", grp.ComputeCycles, rep.ComputeCycles)
	}
}

func TestPrecomputeReplicationScalesWithMachine(t *testing.T) {
	// Figure 9(b): the parallel compute time falls with machine size while
	// the replication time grows slowly.
	cfg := core.Config{Degree: 7, Depth: 3}
	var prevCompute, prevComm float64
	for i, nodes := range []int{8, 32, 128} {
		m, err := dp.NewMachine(nodes, 4, dp.CostModel{})
		if err != nil {
			t.Fatal(err)
		}
		r, err := PrecomputeInteractive(m, cfg, ComputeAndReplicate)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if r.ComputeCycles >= prevCompute {
				t.Errorf("nodes=%d: compute %.3g did not fall (prev %.3g)",
					nodes, r.ComputeCycles, prevCompute)
			}
			if r.CommCycles < prevComm {
				t.Errorf("nodes=%d: replication %.3g fell (prev %.3g)", nodes, r.CommCycles, prevComm)
			}
			if r.CommCycles > prevComm*2 {
				t.Errorf("nodes=%d: replication %.3g grew too fast (prev %.3g)",
					nodes, r.CommCycles, prevComm)
			}
		}
		prevCompute, prevComm = r.ComputeCycles, r.CommCycles
	}
}

func TestPrecomputeBadConfig(t *testing.T) {
	m, _ := dp.NewMachine(4, 4, dp.CostModel{})
	if _, err := PrecomputeInteractive(m, core.Config{}, ComputeEverywhere); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := PrecomputeParentChild(m, core.Config{}, ComputeEverywhere); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPrecomputeStrategyStrings(t *testing.T) {
	if ComputeEverywhere.String() != "compute-everywhere" ||
		ComputeAndReplicate.String() != "compute+replicate" ||
		ComputeAndReplicateGrouped.String() != "compute+replicate-grouped" {
		t.Error("strategy names wrong")
	}
	if PrecomputeStrategy(99).String() != "unknown" {
		t.Error("unknown strategy name wrong")
	}
}
