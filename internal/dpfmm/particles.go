package dpfmm

import (
	"fmt"
	"math"

	"nbody/internal/core"
	"nbody/internal/direct"
	"nbody/internal/dp"
	"nbody/internal/geom"
	"nbody/internal/metrics"
)

// particleGrid is the simulator's version of the paper's 4-D particle
// arrays (Section 3.2): per-leaf-box particle attribute storage padded to
// the maximum box population, aligned with the potential grids so that
// particle-box interactions are VU-local.
type particleGrid struct {
	cap   int
	count *dp.Grid3 // particles per box (Vlen 1)
	px    *dp.Grid3 // x coordinates (Vlen cap)
	py    *dp.Grid3
	pz    *dp.Grid3
	pq    *dp.Grid3 // charges
	phi   *dp.Grid3 // per-particle accumulated potential

	// index maps sorted position -> original particle index; phiOut is the
	// result in sorted order, gathered from phi at the end.
	index  []int
	phiOut []float64
	boxOf  []geom.Coord3 // leaf box of each sorted particle
	slot   []int         // slot of each sorted particle within its box
}

// ReshapeStats reports the communication behaviour of the coordinate sort +
// reshape: the paper's claim is that after the coordinate sort, the 1-D to
// 4-D reshape needs no inter-VU communication for uniform distributions
// with at least one box per VU.
type ReshapeStats struct {
	MovedOffVU int64 // particles whose 1-D VU differed from their box's VU
	Local      int64
}

var lastReshape ReshapeStats

// LastReshapeStats returns the reshape statistics of the most recent
// partitionParticles call (test/bench instrumentation).
func LastReshapeStats() ReshapeStats { return lastReshape }

// partitionParticles performs the coordinate sort of Section 3.2 and builds
// the particle grids.
func (s *Solver) partitionParticles(pos []geom.Vec3, q []float64) (*particleGrid, error) {
	n := s.Hier.GridSize(s.Cfg.Depth)
	root := s.Hier.Root
	h := root.Side / 2
	for _, p := range pos {
		// The negated form rejects NaN coordinates as well (every
		// comparison with NaN is false).
		ok := math.Abs(p.X-root.Center.X) <= h && math.Abs(p.Y-root.Center.Y) <= h &&
			math.Abs(p.Z-root.Center.Z) <= h
		if !ok {
			return nil, fmt.Errorf("dpfmm: particle %v outside domain %v", p, root)
		}
	}
	// Keys built from the potential-grid layout: VU address bits above
	// local memory address bits (Figure 5).
	probe := s.M.NewGrid3(n, 1)
	layout := probe.Layout
	keys := make([]uint64, len(pos))
	for i, p := range pos {
		keys[i] = layout.SortKey(s.Hier.LeafOf(p))
	}
	xs := make([]float64, len(pos))
	ys := make([]float64, len(pos))
	zs := make([]float64, len(pos))
	qs := make([]float64, len(pos))
	for i, p := range pos {
		xs[i], ys[i], zs[i], qs[i] = p.X, p.Y, p.Z, q[i]
	}
	ax := s.M.NewArray1D(xs)
	ay := s.M.NewArray1D(ys)
	az := s.M.NewArray1D(zs)
	aq := s.M.NewArray1D(qs)
	perm := dp.SortByKeys(s.M, keys, ax, ay, az, aq)

	pg := &particleGrid{
		index:  perm,
		phiOut: make([]float64, len(pos)),
		boxOf:  make([]geom.Coord3, len(pos)),
		slot:   make([]int, len(pos)),
	}
	// Box of each sorted particle, box populations, capacity.
	counts := make(map[geom.Coord3]int)
	for i := range perm {
		c := s.Hier.LeafOf(geom.Vec3{X: ax.Data[i], Y: ay.Data[i], Z: az.Data[i]})
		pg.boxOf[i] = c
		pg.slot[i] = counts[c]
		counts[c]++
		if counts[c] > pg.cap {
			pg.cap = counts[c]
		}
	}
	if pg.cap == 0 {
		pg.cap = 1
	}
	pg.count = s.M.NewGrid3(n, 1)
	pg.px = s.M.NewGrid3(n, pg.cap)
	pg.py = s.M.NewGrid3(n, pg.cap)
	pg.pz = s.M.NewGrid3(n, pg.cap)
	pg.pq = s.M.NewGrid3(n, pg.cap)
	pg.phi = s.M.NewGrid3(n, pg.cap)

	// Reshape 1-D sorted -> 4-D box arrays, counting the VU alignment the
	// coordinate sort is designed to deliver.
	var off, local int64
	for i := range perm {
		c := pg.boxOf[i]
		sl := pg.slot[i]
		pg.px.At(c)[sl] = ax.Data[i]
		pg.py.At(c)[sl] = ay.Data[i]
		pg.pz.At(c)[sl] = az.Data[i]
		pg.pq.At(c)[sl] = aq.Data[i]
		pg.count.At(c)[0]++
		if ax.VUOf(i) == layout.VUOf(c) {
			local += 4
		} else {
			off += 4
		}
	}
	s.M.AccountSend(off, local)
	lastReshape = ReshapeStats{MovedOffVU: off / 4, Local: local / 4}
	return pg, nil
}

// leafOuter samples each leaf box's particle potential at its outer sphere
// points (step 1) — entirely VU-local given the aligned particle grids.
func (s *Solver) leafOuter(pg *particleGrid, far *dp.Grid3) {
	rule := s.Cfg.Rule
	k := rule.K()
	a := s.Cfg.RadiusRatio * s.Hier.BoxSide(s.Cfg.Depth)
	layout := far.Layout
	eff := s.M.Cost.KernelEfficiency
	far.ForEachBox(func(c geom.Coord3, g []float64) {
		cnt := int(pg.count.At(c)[0])
		if cnt == 0 {
			return
		}
		center := s.Hier.Box(s.Cfg.Depth, c).Center
		xs := pg.px.At(c)
		ys := pg.py.At(c)
		zs := pg.pz.At(c)
		qs := pg.pq.At(c)
		for i, si := range rule.Points {
			p := center.Add(si.Scale(a))
			var v float64
			for j := 0; j < cnt; j++ {
				v += qs[j] / p.Dist(geom.Vec3{X: xs[j], Y: ys[j], Z: zs[j]})
			}
			g[i] = v
		}
		s.M.ChargeCompute(layout.VUOf(c), int64(cnt)*int64(k)*direct.FlopsPerPair, eff)
	})
	s.rec.AddFlops(metrics.PhaseLeafOuter, int64(len(pg.index))*int64(k)*direct.FlopsPerPair)
}

// evalLocal evaluates leaf inner approximations at the particles (step 4).
func (s *Solver) evalLocal(pg *particleGrid, loc *dp.Grid3) {
	rule := s.Cfg.Rule
	m := s.Cfg.M
	a := s.Cfg.RadiusRatio * s.Hier.BoxSide(s.Cfg.Depth)
	layout := loc.Layout
	eff := s.M.Cost.KernelEfficiency
	loc.ForEachBox(func(c geom.Coord3, g []float64) {
		cnt := int(pg.count.At(c)[0])
		if cnt == 0 {
			return
		}
		center := s.Hier.Box(s.Cfg.Depth, c).Center
		xs := pg.px.At(c)
		ys := pg.py.At(c)
		zs := pg.pz.At(c)
		phi := pg.phi.At(c)
		for j := 0; j < cnt; j++ {
			x := geom.Vec3{X: xs[j], Y: ys[j], Z: zs[j]}
			phi[j] += core.EvalInner(rule, m, center, a, g, x)
		}
		s.M.ChargeCompute(layout.VUOf(c), int64(cnt)*int64(rule.K())*int64(m+1)*6, eff)
	})
	s.rec.AddFlops(metrics.PhaseEvalLocal, int64(len(pg.index))*int64(rule.K())*int64(m+1)*6)
}

// gatherPhi copies the per-box accumulated potentials back into sorted
// order; called once after all phases have deposited into the phi grid.
func (pg *particleGrid) gatherPhi() {
	for i := range pg.phiOut {
		pg.phiOut[i] = pg.phi.At(pg.boxOf[i])[pg.slot[i]]
	}
}
