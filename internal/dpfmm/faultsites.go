package dpfmm

// Fault-injection site names (see internal/faults): one per named phase of
// the data-parallel pipeline, fired inside the phase's open metrics span so
// an injected panic is attributed to that phase by the public API's
// recovery boundary.
const (
	FaultSiteSort      = "dpfmm/sort"
	FaultSiteLeafOuter = "dpfmm/leaf-outer"
	FaultSiteT1        = "dpfmm/T1"
	FaultSiteT3        = "dpfmm/T3"
	FaultSiteGhost     = "dpfmm/ghost"
	FaultSiteT2        = "dpfmm/T2"
	FaultSiteEval      = "dpfmm/eval"
	FaultSiteNear      = "dpfmm/near"
)

// FaultSites lists the sites in pipeline order for matrix tests. Every
// ghost strategy opens a ghost span before its first data motion, so the
// ghost site fires under all four strategies.
var FaultSites = []string{
	FaultSiteSort, FaultSiteLeafOuter, FaultSiteT1, FaultSiteT3,
	FaultSiteGhost, FaultSiteT2, FaultSiteEval, FaultSiteNear,
}
