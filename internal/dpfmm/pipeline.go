package dpfmm

import (
	"context"

	"nbody/internal/dp"
	"nbody/internal/geom"
	"nbody/internal/metrics"
	"nbody/internal/pipeline"
)

// Fault-injection site names (see internal/faults): one per named phase of
// the data-parallel pipeline, fired by the phase runner (internal/pipeline)
// when the phase completes without error, so an injected panic is attributed
// to that phase by the public API's recovery boundary.
const (
	FaultSiteSort      = "dpfmm/sort"
	FaultSiteLeafOuter = "dpfmm/leaf-outer"
	FaultSiteT1        = "dpfmm/T1"
	FaultSiteT3        = "dpfmm/T3"
	FaultSiteGhost     = "dpfmm/ghost"
	FaultSiteT2        = "dpfmm/T2"
	FaultSiteEval      = "dpfmm/eval"
	FaultSiteNear      = "dpfmm/near"
	// FaultSiteScatter covers the final un-reshape (per-box potentials back
	// to particle order); FaultSiteEmbed and FaultSiteExtract cover the
	// multigrid-storage data motion around the traversal phases.
	FaultSiteScatter = "dpfmm/scatter"
	FaultSiteEmbed   = "dpfmm/embed"
	FaultSiteExtract = "dpfmm/extract"
)

// FaultSites lists the sites in pipeline order for matrix tests. Every
// ghost strategy opens a ghost span before its first data motion, so the
// ghost site fires under all four strategies.
var FaultSites = []string{
	FaultSiteSort, FaultSiteLeafOuter, FaultSiteT1, FaultSiteT3,
	FaultSiteGhost, FaultSiteT2, FaultSiteEval, FaultSiteNear,
}

// FaultSitesAll additionally lists the sites that do not fire on every
// configuration (scatter runs on every solve but is exercised separately;
// embed/extract fire only with MultigridStorage), for binary-wide site
// inventories.
var FaultSitesAll = append(append([]string{}, FaultSites...),
	FaultSiteScatter, FaultSiteEmbed, FaultSiteExtract)

// sortPhase partitions the particles onto the machine (coordinate sort +
// communication-free reshape), publishing the grid through *pg for the later
// phases. The fault site fires only when partitioning succeeds.
func (s *Solver) sortPhase(pg **particleGrid, pos []geom.Vec3, q []float64) pipeline.Phase {
	return pipeline.Phase{Name: metrics.PhaseSort, Site: FaultSiteSort,
		Run: func(context.Context) error {
			g, err := s.partitionParticles(pos, q)
			if err != nil {
				return err
			}
			*pg = g
			return nil
		}}
}

// t2Sub is the sub-step declaration of the composite T2 phase: every ghost
// strategy opens ghost and T2 spans itself (via pipeline.Step) inside
// t2Level, in strategy-dependent multiplicity.
var t2Sub = []pipeline.SubStep{
	{Name: metrics.PhaseGhost, Site: FaultSiteGhost},
	{Name: metrics.PhaseT2, Site: FaultSiteT2},
}

// levelPhases declares steps 1-3 (leaf outer, upward, downward) with one
// grid per level — the simple storage scheme. Grids are allocated when the
// leaf-outer phase runs (after a successful sort, as before the phase-runner
// refactor); the leaf-level local-field grid is published through *out.
func (s *Solver) levelPhases(pg **particleGrid, out **dp.Grid3, k, depth int) []pipeline.Phase {
	far := make([]*dp.Grid3, depth+1)
	loc := make([]*dp.Grid3, depth+1)
	ps := []pipeline.Phase{
		{Name: metrics.PhaseLeafOuter, Site: FaultSiteLeafOuter,
			Run: func(context.Context) error {
				for l := 2; l <= depth; l++ {
					far[l] = s.M.NewGrid3(1<<l, k)
					loc[l] = s.M.NewGrid3(1<<l, k)
				}
				*out = loc[depth]
				s.leafOuter(*pg, far[depth])
				return nil
			}},
	}
	for l := depth - 1; l >= 2; l-- {
		ps = append(ps, pipeline.Phase{Name: metrics.PhaseT1, Site: FaultSiteT1,
			Run: func(context.Context) error {
				s.upwardLevel(far[l+1], far[l])
				return nil
			}})
	}
	for l := 2; l <= depth; l++ {
		if l > 2 {
			ps = append(ps, pipeline.Phase{Name: metrics.PhaseT3, Site: FaultSiteT3,
				Run: func(context.Context) error {
					s.t3Level(loc[l-1], loc[l])
					return nil
				}})
		}
		ps = append(ps, pipeline.Phase{Name: metrics.PhaseT2, Composite: true, Sub: t2Sub,
			Run: func(context.Context) error {
				s.t2Level(far[l], loc[l])
				return nil
			}})
	}
	return ps
}

// multigridPhases declares steps 1-3 over the paper's two-layer embedded
// storage (Section 3.1): leaf levels live in the Leaf layer, all coarser
// levels embedded in the Nonleaf layer; traversal phases work on level-sized
// temporaries moved by Multigrid-embed/extract (the Multigrid-reduce /
// Multigrid-distribute operators of Section 3.3.2). Temporaries are created
// when their phase runs, preserving the storage scheme's peak-memory
// behavior.
func (s *Solver) multigridPhases(pg **particleGrid, out **dp.Grid3, k, depth int) []pipeline.Phase {
	var farMG, locMG *Multigrid
	var cur *dp.Grid3
	ps := []pipeline.Phase{
		{Name: metrics.PhaseLeafOuter, Site: FaultSiteLeafOuter,
			Run: func(context.Context) error {
				farMG = NewMultigrid(s.M, depth, k)
				locMG = NewMultigrid(s.M, depth, k)
				s.leafOuter(*pg, farMG.Leaf)
				cur = farMG.Leaf
				return nil
			}},
	}
	for l := depth - 1; l >= 2; l-- {
		var parent *dp.Grid3
		ps = append(ps,
			pipeline.Phase{Name: metrics.PhaseT1, Site: FaultSiteT1,
				Run: func(context.Context) error {
					parent = s.M.NewGrid3(1<<l, k)
					s.upwardLevel(cur, parent)
					return nil
				}},
			pipeline.Phase{Name: metrics.PhaseEmbed, Site: FaultSiteEmbed,
				Run: func(context.Context) error {
					farMG.Embed(dp.RemapAliased, parent, l, true)
					cur = parent
					return nil
				}},
		)
	}
	for l := 2; l <= depth; l++ {
		var farL, locL, locParent *dp.Grid3
		if l != depth {
			ps = append(ps, pipeline.Phase{Name: metrics.PhaseExtract, Site: FaultSiteExtract,
				Run: func(context.Context) error {
					farL = s.M.NewGrid3(1<<l, k)
					farMG.Extract(dp.RemapAliased, farL, l, true)
					return nil
				}})
		}
		if l > 2 {
			ps = append(ps,
				pipeline.Phase{Name: metrics.PhaseExtract, Site: FaultSiteExtract,
					Run: func(context.Context) error {
						locParent = s.M.NewGrid3(1<<(l-1), k)
						locMG.Extract(dp.RemapAliased, locParent, l-1, true)
						return nil
					}},
				pipeline.Phase{Name: metrics.PhaseT3, Site: FaultSiteT3,
					Run: func(context.Context) error {
						locL = s.M.NewGrid3(1<<l, k)
						s.t3Level(locParent, locL)
						return nil
					}},
			)
		}
		ps = append(ps, pipeline.Phase{Name: metrics.PhaseT2, Composite: true, Sub: t2Sub,
			Run: func(context.Context) error {
				if locL == nil {
					locL = s.M.NewGrid3(1<<l, k)
				}
				fl := farL
				if l == depth {
					fl = farMG.Leaf
				}
				s.t2Level(fl, locL)
				if l == depth {
					*out = locL
				}
				return nil
			}})
		if l != depth {
			ps = append(ps, pipeline.Phase{Name: metrics.PhaseEmbed, Site: FaultSiteEmbed,
				Run: func(context.Context) error {
					locMG.Embed(dp.RemapAliased, locL, l, true)
					return nil
				}})
		}
	}
	return ps
}

// hierarchyPhases selects the storage scheme's phase declaration.
func (s *Solver) hierarchyPhases(pg **particleGrid, out **dp.Grid3, k, depth int) []pipeline.Phase {
	if s.MultigridStorage {
		return s.multigridPhases(pg, out, k, depth)
	}
	return s.levelPhases(pg, out, k, depth)
}
