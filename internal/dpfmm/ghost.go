package dpfmm

import (
	"sync/atomic"

	"nbody/internal/blas"
	"nbody/internal/dp"
	"nbody/internal/geom"
	"nbody/internal/metrics"
	"nbody/internal/pipeline"
	"nbody/internal/tree"
)

// T2Level runs only the interactive-field conversion between a far-field
// grid and a local-field grid of equal extent — the isolated phase the
// Table 4 experiment measures.
func (s *Solver) T2Level(far, loc *dp.Grid3) { s.t2Level(far, loc) }

// t2Level converts interactive-field outer approximations into local fields
// at one level, using the solver's ghost strategy. All four strategies
// compute identical results; they differ in data motion, which is what
// Table 4 measures.
func (s *Solver) t2Level(far, loc *dp.Grid3) {
	switch s.Strategy {
	case DirectUnaliased:
		s.t2ShiftPerOffset(far, loc)
	case LinearizedUnaliased:
		s.t2SnakeUnitShifts(far, loc)
	default:
		s.t2Ghost(far, loc)
	}
}

// member reports whether offset o is in the interactive field of octant oct.
func (s *Solver) member(oct int, o geom.Coord3) bool {
	b := tree.InteractiveOffsetBound(s.Cfg.Separation)
	if o.ChebDist(geom.Coord3{}) > b {
		return false
	}
	return o.ChebDist(geom.Coord3{}) > s.Cfg.Separation && s.octMember(oct, o)
}

func (s *Solver) octMember(oct int, o geom.Coord3) bool {
	i := [3]int{oct & 1, oct >> 1 & 1, oct >> 2 & 1}
	for a, v := range [3]int{o.X, o.Y, o.Z} {
		lo := -2*s.Cfg.Separation - i[a]
		hi := 2*s.Cfg.Separation + 1 - i[a]
		if v < lo || v > hi {
			return false
		}
	}
	return true
}

// applyOffsetLocal adds T2(o) * aligned[c] into loc[c] for every target c
// whose octant includes offset o and whose source c+o is inside the domain.
// aligned must satisfy aligned[c] = far[c+o] (established by shifting).
func (s *Solver) applyOffsetLocal(aligned, loc *dp.Grid3, o geom.Coord3) {
	pipeline.Step(&s.rec, metrics.PhaseT2, FaultSiteT2, func() {
		k := s.TS.K
		t := s.TS.T2For(o)
		eff := s.M.Cost.GemmEfficiency(k)
		n := loc.N
		layout := loc.Layout
		var applied int64
		loc.ForEachBox(func(c geom.Coord3, dst []float64) {
			if !s.member(c.Octant(), o) {
				return
			}
			if !c.Add(o).In(n) {
				return // masked: the shifted data wrapped around the domain
			}
			blas.Dgemv(t, aligned.At(c), dst)
			atomicAdd(&applied, 1)
			s.M.ChargeCompute(layout.VUOf(c), blas.DgemmFlops(k, k, 1), eff)
		})
		s.rec.AddT2(applied)
		s.rec.AddFlops(metrics.PhaseT2, applied*blas.DgemmFlops(k, k, 1))
	})
}

// t2ShiftPerOffset is the DirectUnaliased strategy: one whole-array
// multi-axis CSHIFT per offset in the union interactive field.
func (s *Solver) t2ShiftPerOffset(far, loc *dp.Grid3) {
	for _, o := range tree.UnionInteractiveOffsets(s.Cfg.Separation) {
		aligned := far
		if o != (geom.Coord3{}) {
			pipeline.Step(&s.rec, metrics.PhaseGhost, FaultSiteGhost, func() {
				if o.X != 0 {
					aligned = aligned.CShift(dp.AxisX, o.X)
				}
				if o.Y != 0 {
					aligned = aligned.CShift(dp.AxisY, o.Y)
				}
				if o.Z != 0 {
					aligned = aligned.CShift(dp.AxisZ, o.Z)
				}
			})
		}
		s.applyOffsetLocal(aligned, loc, o)
	}
}

// t2SnakeUnitShifts is the LinearizedUnaliased strategy: a boustrophedon
// walk of unit-offset CSHIFTs through the whole offset cube, applying the
// conversion at every interactive cell as the traveling array passes
// through alignment.
func (s *Solver) t2SnakeUnitShifts(far, loc *dp.Grid3) {
	b := tree.InteractiveOffsetBound(s.Cfg.Separation)
	traveling := far.Clone()
	cur := geom.Coord3{}
	visit := func(target geom.Coord3) {
		if cur != target {
			pipeline.Step(&s.rec, metrics.PhaseGhost, FaultSiteGhost, func() {
				for cur != target {
					var axis dp.Axis
					var step int
					switch {
					case cur.X != target.X:
						axis, step = dp.AxisX, sign(target.X-cur.X)
						cur.X += step
					case cur.Y != target.Y:
						axis, step = dp.AxisY, sign(target.Y-cur.Y)
						cur.Y += step
					default:
						axis, step = dp.AxisZ, sign(target.Z-cur.Z)
						cur.Z += step
					}
					traveling = traveling.CShift(axis, step)
				}
			})
		}
		if cur.ChebDist(geom.Coord3{}) > s.Cfg.Separation {
			s.applyOffsetLocal(traveling, loc, cur)
		}
	}
	// Walk to one corner of the cube, then snake through all of it with
	// unit steps (x fastest, matching the preferred low-order-bit axis).
	for _, cell := range snakeCells(b) {
		visit(cell)
	}
}

// snakeCells enumerates the cube [-b, b]^3 exactly once each, in a
// boustrophedon order whose consecutive cells differ by one unit step. The
// walker first travels from the origin to the starting corner without
// processing the cells it passes (each cell is processed exactly once, when
// its boustrophedon turn comes).
func snakeCells(b int) []geom.Coord3 {
	var cells []geom.Coord3
	n := 2*b + 1
	for iz := 0; iz < n; iz++ {
		z := -b + iz
		for iy := 0; iy < n; iy++ {
			y := -b + iy
			if iz%2 == 1 {
				y = b - iy
			}
			for ix := 0; ix < n; ix++ {
				x := -b + ix
				if (iz*n+iy)%2 == 1 {
					x = b - ix
				}
				cells = append(cells, geom.Coord3{X: x, Y: y, Z: z})
			}
		}
	}
	return cells
}

func sign(v int) int {
	if v < 0 {
		return -1
	}
	return 1
}

// ghostDepth returns the ghost-region depth for a grid: 2d boxes on every
// subgrid face (4 for two-separation, as in Section 3.3.1). That bound
// relies on the box-parity / octant relationship, which holds only when the
// subgrid extents are even; degenerate subgrids (extent 1, near the root or
// on heavily partitioned machines) need the full 2d+1.
func (s *Solver) ghostDepth(g *dp.Grid3) int {
	sx, sy, sz := g.SubgridDims()
	if sx%2 == 0 && sy%2 == 0 && sz%2 == 0 {
		return 2 * s.Cfg.Separation
	}
	return 2*s.Cfg.Separation + 1
}

// t2Ghost implements both aliased strategies: fill a per-VU ghost buffer of
// shape (S+2g)^3 and convert entirely locally. DirectAliased fetches the 26
// ghost regions independently (6 faces + 12 edges + 8 corners; a region at
// Chebyshev VU-distance r costs r axis CSHIFTs); LinearizedAliased performs
// the dimension-wise exchange in 6 unit-hop whole-section moves, each hop
// extending the already-filled buffer (edge and corner data ride along).
func (s *Solver) t2Ghost(far, loc *dp.Grid3) {
	k := s.TS.K
	g := s.ghostDepth(far)
	sx, sy, sz := far.SubgridDims()
	gx, gy, gz := sx+2*g, sy+2*g, sz+2*g
	n := far.N
	px, py, _ := far.Layout.VUGrid()
	eff := s.M.Cost.GemmEfficiency(k)

	ghosts := make([][]float64, far.NumVUsUsed())
	pipeline.Step(&s.rec, metrics.PhaseGhost, FaultSiteGhost, func() {
		var offWords, localWords int64
		far.ForEachVU(func(vu int, slab []float64) {
			buf := make([]float64, gx*gy*gz*k)
			vx := vu % px
			vy := vu / px % py
			vz := vu / (px * py)
			var off, local int64
			for lz := 0; lz < gz; lz++ {
				for ly := 0; ly < gy; ly++ {
					for lx := 0; lx < gx; lx++ {
						gc := geom.Coord3{
							X: vx*sx + lx - g,
							Y: vy*sy + ly - g,
							Z: vz*sz + lz - g,
						}
						if !gc.In(n) {
							continue // outside the domain: stays zero
						}
						dst := buf[((lz*gy+ly)*gx+lx)*k:]
						copy(dst[:k], far.At(gc))
						if far.Layout.VUOf(gc) == vu {
							local += int64(k)
						} else {
							off += int64(k)
						}
					}
				}
			}
			ghosts[vu] = buf
			atomicAdd(&offWords, off)
			atomicAdd(&localWords, local)
		})
		calls := int64(6) // linearized: dimension-wise, 2 hops per axis
		if s.Strategy == DirectAliased {
			calls = 6*1 + 12*2 + 8*3 // per-region axis-shift sequences
		}
		s.M.AccountGhostFetch(calls, offWords, localWords)
		s.rec.AddBytes(metrics.PhaseGhost, offWords*8)
	})

	// Local conversion from the ghost buffer.
	pipeline.Step(&s.rec, metrics.PhaseT2, FaultSiteT2, func() {
		var applied int64
		loc.ForEachVU(func(vu int, slab []float64) {
			buf := ghosts[vu]
			vx := vu % px
			vy := vu / px % py
			vz := vu / (px * py)
			var flops, nt int64
			for lz := 0; lz < sz; lz++ {
				for ly := 0; ly < sy; ly++ {
					for lx := 0; lx < sx; lx++ {
						c := geom.Coord3{X: vx*sx + lx, Y: vy*sy + ly, Z: vz*sz + lz}
						oct := c.Octant()
						dst := slab[loc.LocalIndex(lx, ly, lz):]
						dst = dst[:k]
						for _, o := range s.interactive[oct] {
							if !c.Add(o).In(n) {
								continue
							}
							src := buf[(((lz+g+o.Z)*gy+(ly+g+o.Y))*gx+(lx+g+o.X))*k:]
							blas.Dgemv(s.TS.T2For(o), src[:k], dst)
							flops += blas.DgemmFlops(k, k, 1)
							nt++
						}
					}
				}
			}
			atomicAdd(&applied, nt)
			s.M.ChargeCompute(vu, flops, eff)
		})
		s.rec.AddT2(applied)
		s.rec.AddFlops(metrics.PhaseT2, applied*blas.DgemmFlops(k, k, 1))
	})
}

func atomicAdd(p *int64, v int64) { atomic.AddInt64(p, v) }
