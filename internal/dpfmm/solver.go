// Package dpfmm expresses Anderson's method in the data-parallel primitive
// set of the simulated CM-5/5E machine (package dp), following Section 3 of
// Hu & Johnsson SC'96: block-distributed potential grids, coordinate-sorted
// particles reshaped into per-box (4-D) arrays without communication,
// parent-child interactions through locality-preserving gathers/scatters,
// interactive-field conversion through one of the four ghost-fetch
// strategies of Table 4, and near-field evaluation by shifting particle
// boxes along a linear order.
//
// The package is validated box-for-box against the shared-memory reference
// (internal/core); its purpose is to make the paper's communication and
// efficiency results measurable.
package dpfmm

import (
	"context"
	"fmt"

	"nbody/internal/blas"
	"nbody/internal/core"
	"nbody/internal/dp"
	"nbody/internal/geom"
	"nbody/internal/metrics"
	"nbody/internal/pipeline"
	"nbody/internal/tree"
)

// GhostStrategy selects the interactive-field communication scheme of
// Section 3.3.1 / Table 4.
type GhostStrategy int

// The four strategies, in the order of Table 4.
const (
	// DirectUnaliased: one multi-axis CSHIFT of the whole potential array
	// per interactive-field offset.
	DirectUnaliased GhostStrategy = iota
	// LinearizedUnaliased: a snake of unit-offset CSHIFTs through the
	// offset cube, shifting the whole array at every step.
	LinearizedUnaliased
	// DirectAliased: explicit per-VU ghost regions (4 deep on every face),
	// fetched region by region through array aliasing and sectioning.
	DirectAliased
	// LinearizedAliased: whole neighboring subgrids moved along a linear
	// order through the 26 adjacent VUs, then sectioned locally.
	LinearizedAliased
)

// String implements fmt.Stringer.
func (s GhostStrategy) String() string {
	switch s {
	case DirectUnaliased:
		return "direct-unaliased"
	case LinearizedUnaliased:
		return "linearized-unaliased"
	case DirectAliased:
		return "direct-aliased"
	case LinearizedAliased:
		return "linearized-aliased"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Solver runs Anderson's method on a dp.Machine.
type Solver struct {
	M        *dp.Machine
	Cfg      core.Config // normalized
	Hier     tree.Hierarchy
	TS       *core.TranslationSet
	Strategy GhostStrategy

	// OneSidedNear selects the one-sided near-field walk instead of the
	// default Newton's-third-law scheme of Figure 10 (an ablation knob:
	// twice the near-field arithmetic, one fewer traveling array).
	OneSidedNear bool

	// MultigridStorage stores the far- and local-field hierarchies in the
	// paper's two-layer embedded arrays (Section 3.1, Figure 3), moving
	// level data through Multigrid-embed/extract around every traversal
	// phase — the memory-efficient data flow of the CMF implementation.
	// Off, each level gets its own grid (same arithmetic, simpler motion).
	MultigridStorage bool

	interactive [8][]geom.Coord3

	rec  metrics.Rec
	snap metrics.Snapshot
}

// Stats returns the host-side per-phase instrumentation (wall time of the
// simulation, analytic flops, communication bytes) accumulated over all
// solves so far. It complements the machine's own cycle counters
// (dp.Machine.Counters), which model the target machine rather than the
// host. The snapshot is owned by the Solver and refreshed on each call.
func (s *Solver) Stats() *metrics.Snapshot {
	s.rec.ReadInto(&s.snap)
	return &s.snap
}

// Rec exposes the live recorder.
func (s *Solver) Rec() *metrics.Rec { return &s.rec }

// NewSolver builds the data-parallel solver. The root box and configuration
// mirror core.NewSolver.
func NewSolver(m *dp.Machine, root geom.Box3, cfg core.Config, strategy GhostStrategy) (*Solver, error) {
	ncfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if ncfg.Supernodes {
		return nil, fmt.Errorf("dpfmm: supernodes are exercised in the shared-memory solver only")
	}
	h, err := tree.NewHierarchy(root, ncfg.Depth)
	if err != nil {
		return nil, err
	}
	s := &Solver{M: m, Cfg: ncfg, Hier: h, TS: core.NewTranslationSet(ncfg), Strategy: strategy}
	for oct := 0; oct < 8; oct++ {
		s.interactive[oct] = tree.InteractiveOffsets(ncfg.Separation, oct)
	}
	return s, nil
}

// Potentials computes the potential at every particle on the simulated
// machine.
func (s *Solver) Potentials(pos []geom.Vec3, q []float64) ([]float64, error) {
	return s.solvePotentials(nil, pos, q)
}

// PotentialsCtx is Potentials with cooperative cancellation. The
// data-parallel pipeline checks ctx between phases (the simulated machine's
// collective sweeps are not individually interruptible), so the latency
// bound is one phase rather than one chunk.
func (s *Solver) PotentialsCtx(ctx context.Context, pos []geom.Vec3, q []float64) ([]float64, error) {
	return s.solvePotentials(ctx, pos, q)
}

func (s *Solver) solvePotentials(ctx context.Context, pos []geom.Vec3, q []float64) ([]float64, error) {
	if len(pos) != len(q) {
		return nil, fmt.Errorf("dpfmm: %d positions but %d charges", len(pos), len(q))
	}
	k := s.TS.K
	depth := s.Cfg.Depth
	s.rec.SetShape(len(pos), depth, k)

	// Per-solve state the phases publish and consume: the partitioned
	// particle grid, the leaf-level local field, and the output.
	var pg *particleGrid
	var locLeaf *dp.Grid3
	phi := make([]float64, len(pos))

	// Particle handling: coordinate sort + communication-free reshape,
	// then steps 1-3 (leaf outer, upward, downward) under the selected
	// storage scheme, then evaluation, near field, and the un-reshape.
	phases := []pipeline.Phase{s.sortPhase(&pg, pos, q)}
	phases = append(phases, s.hierarchyPhases(&pg, &locLeaf, k, depth)...)
	phases = append(phases,
		pipeline.Phase{Name: metrics.PhaseEvalLocal, Site: FaultSiteEval,
			Run: func(context.Context) error {
				s.evalLocal(pg, locLeaf)
				return nil
			}},
		pipeline.Phase{Name: metrics.PhaseNear, Site: FaultSiteNear,
			Run: func(context.Context) error {
				s.nearField(pg)
				return nil
			}},
		// Un-reshape: scatter per-box potentials back to particle order.
		pipeline.Phase{Name: metrics.PhaseSort, Site: FaultSiteScatter,
			Run: func(context.Context) error {
				pg.gatherPhi()
				for i := range pg.index {
					phi[pg.index[i]] = pg.phiOut[i]
				}
				return nil
			}},
	)
	if err := pipeline.Run(ctx, &s.rec, "dpfmm", phases); err != nil {
		return nil, err
	}
	return phi, nil
}

// upwardLevel applies T1 from the child grid into the parent grid.
func (s *Solver) upwardLevel(child, parent *dp.Grid3) {
	k := s.TS.K
	eff := s.M.Cost.GemmEfficiency(k)
	for oct := 0; oct < 8; oct++ {
		tmp := s.M.NewGrid3(parent.N, k)
		dp.OctantGather(dp.RemapAliased, tmp, child, oct)
		t := s.TS.T1[oct]
		tmp.ForEachVU(func(vu int, slab []float64) {
			boxes := len(slab) / k
			dstSlab := parent.Slab(vu)
			for b := 0; b < boxes; b++ {
				blas.Dgemv(t, slab[b*k:(b+1)*k], dstSlab[b*k:(b+1)*k])
			}
			s.M.ChargeCompute(vu, blas.DgemmFlops(k, k, boxes), eff)
		})
	}
	s.rec.AddFlops(metrics.PhaseT1, 8*blas.DgemmFlops(k, k, parent.N*parent.N*parent.N))
}

// t3Level shifts parent local fields into children.
func (s *Solver) t3Level(parent, child *dp.Grid3) {
	k := s.TS.K
	eff := s.M.Cost.GemmEfficiency(k)
	for oct := 0; oct < 8; oct++ {
		t := s.TS.T3[oct]
		tmp := s.M.NewGrid3(parent.N, k)
		parent.ForEachVU(func(vu int, slab []float64) {
			boxes := len(slab) / k
			dstSlab := tmp.Slab(vu)
			for b := 0; b < boxes; b++ {
				blas.Dgemv(t, slab[b*k:(b+1)*k], dstSlab[b*k:(b+1)*k])
			}
			s.M.ChargeCompute(vu, blas.DgemmFlops(k, k, boxes), eff)
		})
		dp.OctantScatterAdd(dp.RemapAliased, child, tmp, oct)
	}
	s.rec.AddFlops(metrics.PhaseT3, 8*blas.DgemmFlops(k, k, parent.N*parent.N*parent.N))
}
