package dpfmm

import (
	"context"
	"fmt"

	"nbody/internal/core"
	"nbody/internal/direct"
	"nbody/internal/dp"
	"nbody/internal/geom"
	"nbody/internal/kernels"
	"nbody/internal/metrics"
	"nbody/internal/pipeline"
)

// Accelerations computes potentials and the field +grad phi at every
// particle on the simulated machine (the (y-x)/r^3 convention of package
// direct). The far field differentiates the leaf inner approximations; the
// near field accumulates pairwise fields along the same traveling walk as
// the potentials.
func (s *Solver) Accelerations(pos []geom.Vec3, q []float64) ([]float64, []geom.Vec3, error) {
	if len(pos) != len(q) {
		return nil, nil, fmt.Errorf("dpfmm: %d positions but %d charges", len(pos), len(q))
	}
	k := s.TS.K
	depth := s.Cfg.Depth
	s.rec.SetShape(len(pos), depth, k)

	var pg *particleGrid
	var locLeaf *dp.Grid3
	// Acceleration accumulators, same 4-D layout as phi; allocated once the
	// sorted particle grid's shape is known.
	var ax, ay, az *dp.Grid3
	phi := make([]float64, len(pos))
	acc := make([]geom.Vec3, len(pos))

	// Forces always use per-level grids (the multigrid storage scheme is a
	// potentials-pipeline experiment), so the hierarchy phases come from
	// levelPhases directly.
	phases := []pipeline.Phase{{Name: metrics.PhaseSort, Site: FaultSiteSort,
		Run: func(context.Context) error {
			g, err := s.partitionParticles(pos, q)
			if err != nil {
				return err
			}
			pg = g
			ax = s.M.NewGrid3(pg.count.N, pg.cap)
			ay = s.M.NewGrid3(pg.count.N, pg.cap)
			az = s.M.NewGrid3(pg.count.N, pg.cap)
			return nil
		}}}
	phases = append(phases, s.levelPhases(&pg, &locLeaf, k, depth)...)
	phases = append(phases,
		pipeline.Phase{Name: metrics.PhaseEvalLocal, Site: FaultSiteEval,
			Run: func(context.Context) error {
				s.evalLocalGrad(pg, locLeaf, ax, ay, az)
				return nil
			}},
		pipeline.Phase{Name: metrics.PhaseNear, Site: FaultSiteNear,
			Run: func(context.Context) error {
				s.nearFieldForces(pg, ax, ay, az)
				return nil
			}},
		// Un-reshape: scatter per-box potentials and fields back to
		// particle order.
		pipeline.Phase{Name: metrics.PhaseSort, Site: FaultSiteScatter,
			Run: func(context.Context) error {
				pg.gatherPhi()
				for i := range pg.index {
					phi[pg.index[i]] = pg.phiOut[i]
					c, sl := pg.boxOf[i], pg.slot[i]
					acc[pg.index[i]] = geom.Vec3{X: ax.At(c)[sl], Y: ay.At(c)[sl], Z: az.At(c)[sl]}
				}
				return nil
			}},
	)
	if err := pipeline.Run(nil, &s.rec, "dpfmm", phases); err != nil {
		return nil, nil, err
	}
	return phi, acc, nil
}

// evalLocalGrad is step 4 with gradients.
func (s *Solver) evalLocalGrad(pg *particleGrid, loc, ax, ay, az *dp.Grid3) {
	rule := s.Cfg.Rule
	m := s.Cfg.M
	a := s.Cfg.RadiusRatio * s.Hier.BoxSide(s.Cfg.Depth)
	layout := loc.Layout
	eff := s.M.Cost.KernelEfficiency
	loc.ForEachBox(func(c geom.Coord3, g []float64) {
		cnt := int(pg.count.At(c)[0])
		if cnt == 0 {
			return
		}
		center := s.Hier.Box(s.Cfg.Depth, c).Center
		xs, ys, zs := pg.px.At(c), pg.py.At(c), pg.pz.At(c)
		phi := pg.phi.At(c)
		gx, gy, gz := ax.At(c), ay.At(c), az.At(c)
		for j := 0; j < cnt; j++ {
			x := geom.Vec3{X: xs[j], Y: ys[j], Z: zs[j]}
			v, grad := core.EvalInnerGrad(rule, m, center, a, g, x)
			phi[j] += v
			gx[j] += grad.X
			gy[j] += grad.Y
			gz[j] += grad.Z
		}
		s.M.ChargeCompute(layout.VUOf(c), 2*int64(cnt)*int64(rule.K())*int64(m+1)*6, eff)
	})
	s.rec.AddFlops(metrics.PhaseEvalLocal, 2*int64(len(pg.index))*int64(rule.K())*int64(m+1)*6)
}

// nearFieldForces is the one-sided near-field walk accumulating both
// potentials and fields.
func (s *Solver) nearFieldForces(pg *particleGrid, ax, ay, az *dp.Grid3) {
	n := pg.count.N
	d := s.Cfg.Separation
	eff := s.M.Cost.DirectEfficiency
	layout := pg.count.Layout

	var pairs int64
	pg.count.ForEachBox(func(c geom.Coord3, cv []float64) {
		cnt := int(cv[0])
		if cnt < 2 {
			return
		}
		xs, ys, zs := pg.px.At(c), pg.py.At(c), pg.pz.At(c)
		qs, phi := pg.pq.At(c), pg.phi.At(c)
		gx, gy, gz := ax.At(c), ay.At(c), az.At(c)
		kernels.WithinForceSoA(xs[:cnt], ys[:cnt], zs[:cnt], qs[:cnt], phi[:cnt],
			gx[:cnt], gy[:cnt], gz[:cnt])
		s.M.ChargeCompute(layout.VUOf(c), int64(cnt)*int64(cnt-1)*direct.FlopsPerPair, eff)
		atomicAdd(&pairs, int64(cnt)*int64(cnt-1)/2)
	})

	tx, ty, tz := pg.px.Clone(), pg.py.Clone(), pg.pz.Clone()
	tq, tc := pg.pq.Clone(), pg.count.Clone()
	cur := geom.Coord3{}
	for _, cell := range snakeCells(d) {
		for cur != cell {
			var axis dp.Axis
			var step int
			switch {
			case cur.X != cell.X:
				axis, step = dp.AxisX, sign(cell.X-cur.X)
				cur.X += step
			case cur.Y != cell.Y:
				axis, step = dp.AxisY, sign(cell.Y-cur.Y)
				cur.Y += step
			default:
				axis, step = dp.AxisZ, sign(cell.Z-cur.Z)
				cur.Z += step
			}
			tx = tx.CShift(axis, step)
			ty = ty.CShift(axis, step)
			tz = tz.CShift(axis, step)
			tq = tq.CShift(axis, step)
			tc = tc.CShift(axis, step)
		}
		if cur == (geom.Coord3{}) {
			continue
		}
		v := cur
		pg.count.ForEachBox(func(c geom.Coord3, cv []float64) {
			cnt := int(cv[0])
			if cnt == 0 || !c.Add(v).In(n) {
				return
			}
			scnt := int(tc.At(c)[0])
			if scnt == 0 {
				return
			}
			xs, ys, zs := pg.px.At(c), pg.py.At(c), pg.pz.At(c)
			phi := pg.phi.At(c)
			gx, gy, gz := ax.At(c), ay.At(c), az.At(c)
			sx, sy, sz := tx.At(c), ty.At(c), tz.At(c)
			sq := tq.At(c)
			kernels.AccumulateForceSoA(xs[:cnt], ys[:cnt], zs[:cnt], phi[:cnt],
				gx[:cnt], gy[:cnt], gz[:cnt],
				sx[:scnt], sy[:scnt], sz[:scnt], sq[:scnt])
			s.M.ChargeCompute(layout.VUOf(c), 2*int64(cnt)*int64(scnt)*direct.FlopsPerPair, eff)
			atomicAdd(&pairs, int64(cnt)*int64(scnt))
		})
	}
	s.rec.AddNearPairs(pairs)
	s.rec.AddFlops(metrics.PhaseNear, 2*pairs*direct.FlopsPerPair)
}
