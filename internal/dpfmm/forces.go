package dpfmm

import (
	"fmt"
	"math"

	"nbody/internal/core"
	"nbody/internal/direct"
	"nbody/internal/dp"
	"nbody/internal/faults"
	"nbody/internal/geom"
	"nbody/internal/metrics"
)

// Accelerations computes potentials and the field +grad phi at every
// particle on the simulated machine (the (y-x)/r^3 convention of package
// direct). The far field differentiates the leaf inner approximations; the
// near field accumulates pairwise fields along the same traveling walk as
// the potentials.
func (s *Solver) Accelerations(pos []geom.Vec3, q []float64) ([]float64, []geom.Vec3, error) {
	if len(pos) != len(q) {
		return nil, nil, fmt.Errorf("dpfmm: %d positions but %d charges", len(pos), len(q))
	}
	k := s.TS.K
	depth := s.Cfg.Depth
	s.rec.SetShape(len(pos), depth, k)

	sp := s.rec.Begin(metrics.PhaseSort)
	pg, err := s.partitionParticles(pos, q)
	if err == nil {
		faults.Fire(FaultSiteSort)
	}
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	// Acceleration accumulators, same 4-D layout as phi.
	ax := s.M.NewGrid3(pg.count.N, pg.cap)
	ay := s.M.NewGrid3(pg.count.N, pg.cap)
	az := s.M.NewGrid3(pg.count.N, pg.cap)

	far := make([]*dp.Grid3, depth+1)
	loc := make([]*dp.Grid3, depth+1)
	for l := 2; l <= depth; l++ {
		far[l] = s.M.NewGrid3(1<<l, k)
		loc[l] = s.M.NewGrid3(1<<l, k)
	}
	sp = s.rec.Begin(metrics.PhaseLeafOuter)
	s.leafOuter(pg, far[depth])
	faults.Fire(FaultSiteLeafOuter)
	sp.End()
	for l := depth - 1; l >= 2; l-- {
		sp = s.rec.Begin(metrics.PhaseT1)
		s.upwardLevel(far[l+1], far[l])
		faults.Fire(FaultSiteT1)
		sp.End()
	}
	for l := 2; l <= depth; l++ {
		if l > 2 {
			sp = s.rec.Begin(metrics.PhaseT3)
			s.t3Level(loc[l-1], loc[l])
			faults.Fire(FaultSiteT3)
			sp.End()
		}
		s.t2Level(far[l], loc[l]) // records PhaseGhost/PhaseT2 itself
	}
	sp = s.rec.Begin(metrics.PhaseEvalLocal)
	s.evalLocalGrad(pg, loc[depth], ax, ay, az)
	faults.Fire(FaultSiteEval)
	sp.End()
	sp = s.rec.Begin(metrics.PhaseNear)
	s.nearFieldForces(pg, ax, ay, az)
	faults.Fire(FaultSiteNear)
	sp.End()
	pg.gatherPhi()

	phi := make([]float64, len(pos))
	acc := make([]geom.Vec3, len(pos))
	for i := range pg.index {
		phi[pg.index[i]] = pg.phiOut[i]
		c, sl := pg.boxOf[i], pg.slot[i]
		acc[pg.index[i]] = geom.Vec3{X: ax.At(c)[sl], Y: ay.At(c)[sl], Z: az.At(c)[sl]}
	}
	return phi, acc, nil
}

// evalLocalGrad is step 4 with gradients.
func (s *Solver) evalLocalGrad(pg *particleGrid, loc, ax, ay, az *dp.Grid3) {
	rule := s.Cfg.Rule
	m := s.Cfg.M
	a := s.Cfg.RadiusRatio * s.Hier.BoxSide(s.Cfg.Depth)
	layout := loc.Layout
	eff := s.M.Cost.KernelEfficiency
	loc.ForEachBox(func(c geom.Coord3, g []float64) {
		cnt := int(pg.count.At(c)[0])
		if cnt == 0 {
			return
		}
		center := s.Hier.Box(s.Cfg.Depth, c).Center
		xs, ys, zs := pg.px.At(c), pg.py.At(c), pg.pz.At(c)
		phi := pg.phi.At(c)
		gx, gy, gz := ax.At(c), ay.At(c), az.At(c)
		for j := 0; j < cnt; j++ {
			x := geom.Vec3{X: xs[j], Y: ys[j], Z: zs[j]}
			v, grad := core.EvalInnerGrad(rule, m, center, a, g, x)
			phi[j] += v
			gx[j] += grad.X
			gy[j] += grad.Y
			gz[j] += grad.Z
		}
		s.M.ChargeCompute(layout.VUOf(c), 2*int64(cnt)*int64(rule.K())*int64(m+1)*6, eff)
	})
	s.rec.AddFlops(metrics.PhaseEvalLocal, 2*int64(len(pg.index))*int64(rule.K())*int64(m+1)*6)
}

// nearFieldForces is the one-sided near-field walk accumulating both
// potentials and fields.
func (s *Solver) nearFieldForces(pg *particleGrid, ax, ay, az *dp.Grid3) {
	n := pg.count.N
	d := s.Cfg.Separation
	eff := s.M.Cost.DirectEfficiency
	layout := pg.count.Layout

	var pairs int64
	pg.count.ForEachBox(func(c geom.Coord3, cv []float64) {
		cnt := int(cv[0])
		if cnt < 2 {
			return
		}
		xs, ys, zs := pg.px.At(c), pg.py.At(c), pg.pz.At(c)
		qs, phi := pg.pq.At(c), pg.phi.At(c)
		gx, gy, gz := ax.At(c), ay.At(c), az.At(c)
		for i := 0; i < cnt; i++ {
			for j := i + 1; j < cnt; j++ {
				dx, dy, dz := xs[j]-xs[i], ys[j]-ys[i], zs[j]-zs[i]
				r2 := dx*dx + dy*dy + dz*dz
				if r2 == 0 {
					continue // coincident particles: self-exclusion, not Inf
				}
				inv := 1 / math.Sqrt(r2)
				inv3 := inv / r2
				phi[i] += qs[j] * inv
				phi[j] += qs[i] * inv
				gx[i] += qs[j] * dx * inv3
				gy[i] += qs[j] * dy * inv3
				gz[i] += qs[j] * dz * inv3
				gx[j] -= qs[i] * dx * inv3
				gy[j] -= qs[i] * dy * inv3
				gz[j] -= qs[i] * dz * inv3
			}
		}
		s.M.ChargeCompute(layout.VUOf(c), int64(cnt)*int64(cnt-1)*direct.FlopsPerPair, eff)
		atomicAdd(&pairs, int64(cnt)*int64(cnt-1)/2)
	})

	tx, ty, tz := pg.px.Clone(), pg.py.Clone(), pg.pz.Clone()
	tq, tc := pg.pq.Clone(), pg.count.Clone()
	cur := geom.Coord3{}
	for _, cell := range snakeCells(d) {
		for cur != cell {
			var axis dp.Axis
			var step int
			switch {
			case cur.X != cell.X:
				axis, step = dp.AxisX, sign(cell.X-cur.X)
				cur.X += step
			case cur.Y != cell.Y:
				axis, step = dp.AxisY, sign(cell.Y-cur.Y)
				cur.Y += step
			default:
				axis, step = dp.AxisZ, sign(cell.Z-cur.Z)
				cur.Z += step
			}
			tx = tx.CShift(axis, step)
			ty = ty.CShift(axis, step)
			tz = tz.CShift(axis, step)
			tq = tq.CShift(axis, step)
			tc = tc.CShift(axis, step)
		}
		if cur == (geom.Coord3{}) {
			continue
		}
		v := cur
		pg.count.ForEachBox(func(c geom.Coord3, cv []float64) {
			cnt := int(cv[0])
			if cnt == 0 || !c.Add(v).In(n) {
				return
			}
			scnt := int(tc.At(c)[0])
			if scnt == 0 {
				return
			}
			xs, ys, zs := pg.px.At(c), pg.py.At(c), pg.pz.At(c)
			phi := pg.phi.At(c)
			gx, gy, gz := ax.At(c), ay.At(c), az.At(c)
			sx, sy, sz := tx.At(c), ty.At(c), tz.At(c)
			sq := tq.At(c)
			for i := 0; i < cnt; i++ {
				var p, fx, fy, fz float64
				for j := 0; j < scnt; j++ {
					dx, dy, dz := sx[j]-xs[i], sy[j]-ys[i], sz[j]-zs[i]
					r2 := dx*dx + dy*dy + dz*dz
					if r2 == 0 {
						continue // coincident particles: self-exclusion, not Inf
					}
					inv := 1 / math.Sqrt(r2)
					inv3 := inv / r2
					p += sq[j] * inv
					fx += sq[j] * dx * inv3
					fy += sq[j] * dy * inv3
					fz += sq[j] * dz * inv3
				}
				phi[i] += p
				gx[i] += fx
				gy[i] += fy
				gz[i] += fz
			}
			s.M.ChargeCompute(layout.VUOf(c), 2*int64(cnt)*int64(scnt)*direct.FlopsPerPair, eff)
			atomicAdd(&pairs, int64(cnt)*int64(scnt))
		})
	}
	s.rec.AddNearPairs(pairs)
	s.rec.AddFlops(metrics.PhaseNear, 2*pairs*direct.FlopsPerPair)
}
