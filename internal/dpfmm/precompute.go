package dpfmm

import (
	"time"

	"nbody/internal/blas"
	"nbody/internal/core"
	"nbody/internal/dp"
	"nbody/internal/tree"
)

// PrecomputeStrategy selects the redundant-computation / communication
// trade-off for building the translation matrices (Section 3.3.4, Figures
// 8 and 9).
type PrecomputeStrategy int

// The strategies.
const (
	// ComputeEverywhere: every VU computes every matrix; embarrassingly
	// parallel, no communication, maximal redundant work.
	ComputeEverywhere PrecomputeStrategy = iota
	// ComputeAndReplicate: each matrix is computed once (different VUs
	// computing different matrices) and broadcast to all VUs.
	ComputeAndReplicate
	// ComputeAndReplicateGrouped: VUs are partitioned into groups as large
	// as the matrix count; each group computes the full collection and
	// replicates within the group only.
	ComputeAndReplicateGrouped
)

// String implements fmt.Stringer.
func (s PrecomputeStrategy) String() string {
	switch s {
	case ComputeEverywhere:
		return "compute-everywhere"
	case ComputeAndReplicate:
		return "compute+replicate"
	case ComputeAndReplicateGrouped:
		return "compute+replicate-grouped"
	default:
		return "unknown"
	}
}

// PrecomputeResult reports both the modeled machine cycles and the measured
// host wall time of one precomputation experiment.
type PrecomputeResult struct {
	Strategy      PrecomputeStrategy
	Matrices      int
	K             int
	ComputeCycles float64 // critical-path modeled compute cycles
	CommCycles    float64 // modeled replication cycles
	Wall          time.Duration
}

// TotalCycles returns the modeled total.
func (r PrecomputeResult) TotalCycles() float64 { return r.ComputeCycles + r.CommCycles }

// PrecomputeParentChild runs the T1/T3 precomputation experiment of Figure
// 8: 16 K x K matrices (8 per operator).
func PrecomputeParentChild(m *dp.Machine, cfg core.Config, strat PrecomputeStrategy) (PrecomputeResult, error) {
	ncfg, err := cfg.Normalized()
	if err != nil {
		return PrecomputeResult{}, err
	}
	return precompute(m, ncfg, strat, 16, 16), nil
}

// PrecomputeInteractive runs the T2 precomputation experiment of Figure 9:
// the full cube of matrices (1331 for two-separation).
func PrecomputeInteractive(m *dp.Machine, cfg core.Config, strat PrecomputeStrategy) (PrecomputeResult, error) {
	ncfg, err := cfg.Normalized()
	if err != nil {
		return PrecomputeResult{}, err
	}
	b := tree.InteractiveOffsetBound(ncfg.Separation)
	side := 2*b + 1
	return precompute(m, ncfg, strat, side*side*side, side*side*side), nil
}

// precompute models and measures building nmat matrices of shape K x K
// under a strategy. groupMax bounds the group size for the grouped
// strategy (the natural group is one VU per matrix).
func precompute(m *dp.Machine, cfg core.Config, strat PrecomputeStrategy, nmat, groupMax int) PrecomputeResult {
	k := cfg.Rule.K()
	perMatrix := core.TranslationMatrixFlops(k, cfg.M)
	words := int64(k) * int64(k)
	eff := m.Cost.KernelEfficiency
	nvu := m.NumVUs()

	res := PrecomputeResult{Strategy: strat, Matrices: nmat, K: k}
	start := time.Now()
	switch strat {
	case ComputeEverywhere:
		// Measure one VU's real work (all matrices once); every VU does
		// the same, so the critical path equals one full build.
		buildMatrices(cfg, nmat)
		res.ComputeCycles = float64(nmat) * float64(perMatrix) / (m.Cost.FlopsPerCycle * eff)
	case ComputeAndReplicate:
		perVU := (nmat + nvu - 1) / nvu
		buildMatrices(cfg, perVU)
		res.ComputeCycles = float64(perVU) * float64(perMatrix) / (m.Cost.FlopsPerCycle * eff)
		before := m.Counters()
		for i := 0; i < nmat; i++ {
			m.Broadcast(words, 0)
		}
		res.CommCycles = m.Counters().Sub(before).CommCycles()
	case ComputeAndReplicateGrouped:
		group := nmat
		if group > groupMax {
			group = groupMax
		}
		if group > nvu {
			group = nvu
		}
		perVU := (nmat + group - 1) / group
		buildMatrices(cfg, perVU)
		res.ComputeCycles = float64(perVU) * float64(perMatrix) / (m.Cost.FlopsPerCycle * eff)
		before := m.Counters()
		for i := 0; i < nmat; i++ {
			m.Broadcast(words, group)
		}
		res.CommCycles = m.Counters().Sub(before).CommCycles()
	}
	res.Wall = time.Since(start)
	return res
}

// buildMatrices actually constructs n representative translation matrices
// so the measured wall time reflects real kernel work; the host cores play
// the role of the VUs computing in parallel.
func buildMatrices(cfg core.Config, n int) {
	if n <= 0 {
		return
	}
	sink := make([]blas.Matrix, n)
	blas.Parallel(n, func(i int) { sink[i] = core.BuildOneMatrix(cfg, i) })
}
