package dpfmm

import (
	"math"
	"math/rand"
	"testing"

	"nbody/internal/core"
	"nbody/internal/dp"
	"nbody/internal/geom"
	"nbody/internal/tree"
)

func TestHalfSnakeCellsCoverHalfCube(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		cells := halfSnakeCells(d)
		want := ((2*d+1)*(2*d+1)*(2*d+1) - 1) / 2
		if len(cells) != want {
			t.Fatalf("d=%d: %d cells, want %d", d, len(cells), want)
		}
		seen := map[geom.Coord3]bool{}
		walk := 0
		prev := geom.Coord3{}
		for _, c := range cells {
			if seen[c] {
				t.Fatalf("d=%d: duplicate cell %v", d, c)
			}
			seen[c] = true
			neg := geom.Coord3{X: -c.X, Y: -c.Y, Z: -c.Z}
			if seen[neg] {
				t.Fatalf("d=%d: both %v and its negation visited", d, c)
			}
			if c == (geom.Coord3{}) || c.ChebDist(geom.Coord3{}) > d {
				t.Fatalf("d=%d: cell %v outside half cube", d, c)
			}
			walk += abs(c.X-prev.X) + abs(c.Y-prev.Y) + abs(c.Z-prev.Z)
			prev = c
		}
		// Shift economy: rows are unit-stepped; only slab transitions may
		// need a few extra moves. For d=2 this is the paper's "62 single
		// step CSHIFTs" walk (plus slab hops).
		if walk > len(cells)+8*d {
			t.Errorf("d=%d: walk length %d for %d cells — not shift-economical", d, walk, len(cells))
		}
		// Together with negations the cells cover the whole punctured cube.
		full := map[geom.Coord3]bool{}
		for c := range seen {
			full[c] = true
			full[geom.Coord3{X: -c.X, Y: -c.Y, Z: -c.Z}] = true
		}
		if len(full) != 2*want {
			t.Fatalf("d=%d: half + negations cover %d, want %d", d, len(full), 2*want)
		}
	}
}

func TestHalfSnakeMatchesTreeHalfOffsets(t *testing.T) {
	cells := halfSnakeCells(2)
	ref := tree.HalfNearOffsets(2)
	// Same SET up to the choice of representative per pair.
	covered := map[geom.Coord3]bool{}
	for _, c := range cells {
		covered[c] = true
		covered[geom.Coord3{X: -c.X, Y: -c.Y, Z: -c.Z}] = true
	}
	for _, o := range ref {
		if !covered[o] {
			t.Fatalf("offset %v not covered by half snake", o)
		}
	}
}

func TestSymmetricNearFieldMatchesOneSided(t *testing.T) {
	pos, q := uniformParticles(rand.New(rand.NewSource(101)), 900)
	cfg := core.Config{Degree: 5, Depth: 3}

	run := func(oneSided bool) ([]float64, dp.Counters) {
		m := newTestMachine(t, 4)
		s, err := NewSolver(m, unitBox(), cfg, DirectAliased)
		if err != nil {
			t.Fatal(err)
		}
		s.OneSidedNear = oneSided
		before := m.Counters()
		phi, err := s.Potentials(pos, q)
		if err != nil {
			t.Fatal(err)
		}
		return phi, m.Counters().Sub(before)
	}
	phiSym, cSym := run(false)
	phiOne, cOne := run(true)
	for i := range phiSym {
		if math.Abs(phiSym[i]-phiOne[i]) > 1e-9*(1+math.Abs(phiOne[i])) {
			t.Fatalf("symmetric/one-sided mismatch at %d: %g vs %g", i, phiSym[i], phiOne[i])
		}
	}
	// The symmetric walk halves the near-field arithmetic. Near-field
	// flops dominate total flops at this configuration, so total flops
	// must drop noticeably.
	if cSym.Flops >= cOne.Flops {
		t.Errorf("symmetric flops %d not below one-sided %d", cSym.Flops, cOne.Flops)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
