package dpfmm

import (
	"testing"

	"nbody/internal/dp"
	"nbody/internal/geom"
)

func TestMultigridSlotsDisjointAcrossLevels(t *testing.T) {
	m := newTestMachine(t, 2)
	mg := NewMultigrid(m, 4, 1)
	seen := make(map[geom.Coord3]int)
	for level := 0; level < 4; level++ {
		n := 1 << level
		forLevel(n, func(c geom.Coord3) {
			s := mg.Slot(level, c)
			if !s.In(mg.Nonleaf.N) {
				t.Fatalf("level %d box %v slot %v out of range", level, c, s)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("slot %v used by levels %d and %d", s, prev, level)
			}
			seen[s] = level
		})
	}
	// Total nonleaf boxes: 1 + 8 + 64 + 512 = 585 of 4096 slots.
	if len(seen) != 585 {
		t.Errorf("nonleaf slots used = %d, want 585", len(seen))
	}
}

func TestMultigridSlotPanicsOnLeaf(t *testing.T) {
	m := newTestMachine(t, 2)
	mg := NewMultigrid(m, 3, 1)
	defer func() {
		if recover() == nil {
			t.Error("Slot(leaf) should panic")
		}
	}()
	mg.Slot(3, geom.Coord3{})
}

func TestEmbedExtractRoundTrip(t *testing.T) {
	m := newTestMachine(t, 2)
	mg := NewMultigrid(m, 4, 2)
	for _, twoStep := range []bool{false, true} {
		for level := 0; level <= 3; level++ {
			n := 1 << level
			tmp := m.NewGrid3(n, 2)
			tmp.ForEachBox(func(c geom.Coord3, v []float64) {
				v[0] = float64(c.X + 10*c.Y + 100*c.Z + 1000*level)
				v[1] = -v[0]
			})
			mg.Embed(dp.RemapAliased, tmp, level, twoStep)
			out := m.NewGrid3(n, 2)
			mg.Extract(dp.RemapAliased, out, level, twoStep)
			out.ForEachBox(func(c geom.Coord3, v []float64) {
				want := float64(c.X + 10*c.Y + 100*c.Z + 1000*level)
				if v[0] != want || v[1] != -want {
					t.Fatalf("twoStep=%v level %d box %v: %v, want %g", twoStep, level, c, v, want)
				}
			})
		}
	}
}

func TestEmbedLocalityAtDeepLevels(t *testing.T) {
	// With at least one box per VU, the aliased embed must be a pure local
	// copy (the property the embedding is designed for).
	m := newTestMachine(t, 2) // 8 VUs
	mg := NewMultigrid(m, 4, 2)
	tmp := m.NewGrid3(8, 2) // level 3: 512 boxes over 8 VUs
	before := m.Counters()
	mg.Embed(dp.RemapAliased, tmp, 3, false)
	d := m.Counters().Sub(before)
	if d.OffVUWords != 0 {
		t.Errorf("deep-level embed moved %d words off-VU", d.OffVUWords)
	}
	if d.LocalWords == 0 {
		t.Error("deep-level embed recorded no local copies")
	}
}

func TestEmbedSendVsTwoStepCost(t *testing.T) {
	// Figure 7's content: for small levels (fewer boxes than VUs) the
	// general send is far slower than the two-step scheme.
	m, err := dp.NewMachine(64, 4, dp.CostModel{}) // 256 VUs
	if err != nil {
		t.Fatal(err)
	}
	mg := NewMultigrid(m, 5, 4)
	tmp := m.NewGrid3(2, 4) // level 1: 8 boxes << 256 VUs

	before := m.Counters()
	mg.Embed(dp.RemapSend, tmp, 1, false)
	send := m.Counters().Sub(before).CommCycles()

	before = m.Counters()
	mg.Embed(dp.RemapAliased, tmp, 1, true)
	c := m.Counters().Sub(before)
	twoStep := c.CommCycles() + c.CopyCycles()
	if send <= twoStep {
		t.Errorf("send cycles %.0f not above two-step cycles %.0f", send, twoStep)
	}
}

func TestPivotLevel(t *testing.T) {
	m, err := dp.NewMachine(64, 4, dp.CostModel{}) // 256 VUs
	if err != nil {
		t.Fatal(err)
	}
	mg := NewMultigrid(m, 5, 1)
	// 8^l >= 256 first at l = 3 (512 boxes).
	if lp := mg.pivotLevel(); lp != 3 {
		t.Errorf("pivotLevel = %d, want 3", lp)
	}
}
