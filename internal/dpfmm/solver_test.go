package dpfmm

import (
	"math"
	"math/rand"
	"testing"

	"nbody/internal/core"
	"nbody/internal/direct"
	"nbody/internal/dp"
	"nbody/internal/geom"
)

func unitBox() geom.Box3 {
	return geom.Box3{Center: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1}
}

func uniformParticles(rng *rand.Rand, n int) ([]geom.Vec3, []float64) {
	pos := make([]geom.Vec3, n)
	q := make([]float64, n)
	for i := range pos {
		pos[i] = geom.Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		q[i] = rng.Float64()
	}
	return pos, q
}

func newTestMachine(t *testing.T, nodes int) *dp.Machine {
	t.Helper()
	m, err := dp.NewMachine(nodes, 4, dp.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func maxRelDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		d := math.Abs(a[i]-b[i]) / (1 + math.Abs(b[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// TestAllStrategiesMatchSharedMemorySolver is the package's central
// correctness statement: the data-parallel expression computes the same
// potentials as the shared-memory reference, for every ghost strategy.
func TestAllStrategiesMatchSharedMemorySolver(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	pos, q := uniformParticles(rng, 800)
	cfg := core.Config{Degree: 5, Depth: 3}

	ref, err := core.NewSolver(unitBox(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}

	for _, strat := range []GhostStrategy{DirectUnaliased, LinearizedUnaliased, DirectAliased, LinearizedAliased} {
		m := newTestMachine(t, 4)
		s, err := NewSolver(m, unitBox(), cfg, strat)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Potentials(pos, q)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if d := maxRelDiff(got, want); d > 1e-9 {
			t.Errorf("%v: max relative difference vs reference %.2e", strat, d)
		}
	}
}

func TestDataParallelAccuracyVsDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	pos, q := uniformParticles(rng, 1200)
	m := newTestMachine(t, 8)
	s, err := NewSolver(m, unitBox(), core.Config{Degree: 9, Depth: 3}, DirectAliased)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	want := direct.PotentialsParallel(pos, q)
	var rms, mean float64
	for i := range got {
		d := got[i] - want[i]
		rms += d * d
		mean += math.Abs(want[i])
	}
	rms = math.Sqrt(rms / float64(len(got)))
	mean /= float64(len(got))
	if rms/mean > 1e-4 {
		t.Errorf("relative error %.2e", rms/mean)
	}
}

func TestCoordinateSortEliminatesReshapeCommunication(t *testing.T) {
	// Section 3.2's claim: for a uniform distribution with at least one
	// leaf box per VU, the coordinate sort leaves every particle on the
	// same VU as its leaf box, so the 1-D -> 4-D reshape is local.
	rng := rand.New(rand.NewSource(83))
	pos, q := uniformParticles(rng, 4000)
	m := newTestMachine(t, 4) // 16 VUs, 512 leaf boxes at depth 3
	s, err := NewSolver(m, unitBox(), core.Config{Degree: 5, Depth: 3}, DirectAliased)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Potentials(pos, q); err != nil {
		t.Fatal(err)
	}
	rs := LastReshapeStats()
	total := rs.MovedOffVU + rs.Local
	if total == 0 {
		t.Fatal("no reshape recorded")
	}
	// Uniformity is only approximate at N=4000 over 512 boxes, so the VU
	// boundary in the sorted order drifts slightly ("it is expected that
	// the coordinate sort will leave most particles in the same VU").
	// Require >85% locality — an unsorted assignment would leave only
	// 1/16 local.
	if float64(rs.MovedOffVU) > 0.15*float64(total) {
		t.Errorf("reshape moved %d of %d particles off-VU", rs.MovedOffVU, total)
	}
}

func TestGhostStrategyDataMotionOrdering(t *testing.T) {
	// Table 4's qualitative content: aliased strategies move far less data
	// than unaliased ones, and the linearized-unaliased walk issues ~unit
	// shifts only while the direct-unaliased walk issues fewer, larger
	// shifts.
	rng := rand.New(rand.NewSource(84))
	pos, q := uniformParticles(rng, 500)
	cfg := core.Config{Degree: 3, Depth: 3}
	type result struct {
		c dp.Counters
	}
	res := map[GhostStrategy]result{}
	for _, strat := range []GhostStrategy{DirectUnaliased, LinearizedUnaliased, DirectAliased, LinearizedAliased} {
		m := newTestMachine(t, 4)
		s, err := NewSolver(m, unitBox(), cfg, strat)
		if err != nil {
			t.Fatal(err)
		}
		before := m.Counters()
		if _, err := s.Potentials(pos, q); err != nil {
			t.Fatal(err)
		}
		res[strat] = result{c: m.Counters().Sub(before)}
	}
	offA := res[DirectAliased].c.OffVUWords
	offLA := res[LinearizedAliased].c.OffVUWords
	offDU := res[DirectUnaliased].c.OffVUWords
	offLU := res[LinearizedUnaliased].c.OffVUWords
	if offA >= offDU || offA >= offLU {
		t.Errorf("aliased off-VU (%d) not below unaliased (%d direct, %d linearized)",
			offA, offDU, offLU)
	}
	if offLA != offA {
		t.Errorf("the two aliased fills should move identical data: %d vs %d", offLA, offA)
	}
	if res[DirectAliased].c.CShifts <= res[LinearizedAliased].c.CShifts {
		t.Errorf("direct aliased should issue more shift operations: %d vs %d",
			res[DirectAliased].c.CShifts, res[LinearizedAliased].c.CShifts)
	}
	// The linearized walk reuses the traveling array: fewer CSHIFT calls
	// (unit steps through the cube) and less off-VU data than restarting a
	// multi-axis shift from scratch for each of the 1206 offsets — the 7.4x
	// improvement of Section 3.3.1.
	if res[LinearizedUnaliased].c.CShifts >= res[DirectUnaliased].c.CShifts {
		t.Errorf("linearized walk should issue fewer shifts: %d vs %d",
			res[LinearizedUnaliased].c.CShifts, res[DirectUnaliased].c.CShifts)
	}
	if offLU >= offDU {
		t.Errorf("linearized walk should move fewer words: %d vs %d", offLU, offDU)
	}
}

func TestSolverRejectsBadInput(t *testing.T) {
	m := newTestMachine(t, 2)
	if _, err := NewSolver(m, unitBox(), core.Config{}, DirectAliased); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := NewSolver(m, unitBox(), core.Config{Degree: 5, Depth: 3, Supernodes: true}, DirectAliased); err == nil {
		t.Error("supernodes accepted")
	}
	s, err := NewSolver(m, unitBox(), core.Config{Degree: 5, Depth: 2}, DirectAliased)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Potentials(make([]geom.Vec3, 2), make([]float64, 3)); err == nil {
		t.Error("mismatched input accepted")
	}
	if _, err := s.Potentials([]geom.Vec3{{X: 9}}, []float64{1}); err == nil {
		t.Error("out-of-domain particle accepted")
	}
}

func TestStrategyStrings(t *testing.T) {
	names := map[GhostStrategy]string{
		DirectUnaliased:     "direct-unaliased",
		LinearizedUnaliased: "linearized-unaliased",
		DirectAliased:       "direct-aliased",
		LinearizedAliased:   "linearized-aliased",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestComputeCyclesCharged(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	pos, q := uniformParticles(rng, 400)
	m := newTestMachine(t, 2)
	s, err := NewSolver(m, unitBox(), core.Config{Degree: 5, Depth: 3}, DirectAliased)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Potentials(pos, q); err != nil {
		t.Fatal(err)
	}
	maxC, meanC := m.MaxComputeCycles()
	if maxC <= 0 || meanC <= 0 {
		t.Errorf("no compute cycles charged: max=%g mean=%g", maxC, meanC)
	}
	if m.Counters().Flops <= 0 {
		t.Error("no flops recorded")
	}
}

func TestMultigridStorageMatchesPerLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	pos, q := uniformParticles(rng, 700)
	cfg := core.Config{Degree: 5, Depth: 4}

	run := func(mg bool) []float64 {
		m := newTestMachine(t, 4)
		s, err := NewSolver(m, unitBox(), cfg, LinearizedAliased)
		if err != nil {
			t.Fatal(err)
		}
		s.MultigridStorage = mg
		phi, err := s.Potentials(pos, q)
		if err != nil {
			t.Fatal(err)
		}
		return phi
	}
	plain := run(false)
	embedded := run(true)
	for i := range plain {
		if math.Abs(plain[i]-embedded[i]) > 1e-10*(1+math.Abs(plain[i])) {
			t.Fatalf("multigrid storage mismatch at %d: %g vs %g", i, embedded[i], plain[i])
		}
	}
}

func TestRejectsNaNPositions(t *testing.T) {
	m := newTestMachine(t, 2)
	s, err := NewSolver(m, unitBox(), core.Config{Degree: 5, Depth: 2}, DirectAliased)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Potentials([]geom.Vec3{{X: math.NaN(), Y: 0.5, Z: 0.5}}, []float64{1}); err == nil {
		t.Error("NaN position accepted")
	}
}
