package dpfmm

import (
	"nbody/internal/direct"
	"nbody/internal/dp"
	"nbody/internal/geom"
	"nbody/internal/kernels"
	"nbody/internal/metrics"
)

// nearField evaluates the d-separation near field (step 5) by the paper's
// linear-ordering scheme (Section 3.4), dispatching between the symmetric
// (Figure 10, default) and one-sided walks.
func (s *Solver) nearField(pg *particleGrid) {
	if s.OneSidedNear {
		s.nearFieldOneSided(pg)
		return
	}
	s.nearFieldSymmetric(pg)
}

// nearFieldOneSided walks the full near-field offset cube (124 alignments
// for two-separation) with single-step CSHIFTs; at every alignment each box
// accumulates the interactions of its own particles with the traveling
// box's, writing only its own potentials. Twice the arithmetic of the
// symmetric walk, but no accumulator array to carry.
func (s *Solver) nearFieldOneSided(pg *particleGrid) {
	n := pg.count.N
	d := s.Cfg.Separation
	eff := s.M.Cost.DirectEfficiency

	// Intra-box interactions first: symmetric and local.
	layout := pg.count.Layout
	var pairs int64
	pg.count.ForEachBox(func(c geom.Coord3, cv []float64) {
		cnt := int(cv[0])
		if cnt < 2 {
			return
		}
		xs, ys, zs := pg.px.At(c), pg.py.At(c), pg.pz.At(c)
		qs, phi := pg.pq.At(c), pg.phi.At(c)
		kernels.WithinPotentialSoA(xs[:cnt], ys[:cnt], zs[:cnt], qs[:cnt], phi[:cnt])
		s.M.ChargeCompute(layout.VUOf(c), int64(cnt)*int64(cnt-1)/2*direct.FlopsPerPair, eff)
		atomicAdd(&pairs, int64(cnt)*int64(cnt-1)/2)
	})

	// Traveling copies of the particle arrays.
	tx, ty, tz := pg.px.Clone(), pg.py.Clone(), pg.pz.Clone()
	tq, tc := pg.pq.Clone(), pg.count.Clone()
	cur := geom.Coord3{}
	for _, cell := range snakeCells(d) {
		for cur != cell {
			var axis dp.Axis
			var step int
			switch {
			case cur.X != cell.X:
				axis, step = dp.AxisX, sign(cell.X-cur.X)
				cur.X += step
			case cur.Y != cell.Y:
				axis, step = dp.AxisY, sign(cell.Y-cur.Y)
				cur.Y += step
			default:
				axis, step = dp.AxisZ, sign(cell.Z-cur.Z)
				cur.Z += step
			}
			tx = tx.CShift(axis, step)
			ty = ty.CShift(axis, step)
			tz = tz.CShift(axis, step)
			tq = tq.CShift(axis, step)
			tc = tc.CShift(axis, step)
		}
		if cur == (geom.Coord3{}) {
			continue
		}
		v := cur
		pg.count.ForEachBox(func(c geom.Coord3, cv []float64) {
			cnt := int(cv[0])
			if cnt == 0 || !c.Add(v).In(n) {
				return // empty target or wrapped (masked) source
			}
			scnt := int(tc.At(c)[0])
			if scnt == 0 {
				return
			}
			xs, ys, zs := pg.px.At(c), pg.py.At(c), pg.pz.At(c)
			phi := pg.phi.At(c)
			sx, sy, sz := tx.At(c), ty.At(c), tz.At(c)
			sq := tq.At(c)
			kernels.AccumulatePotentialSoA(xs[:cnt], ys[:cnt], zs[:cnt], phi[:cnt],
				sx[:scnt], sy[:scnt], sz[:scnt], sq[:scnt])
			s.M.ChargeCompute(layout.VUOf(c), int64(cnt)*int64(scnt)*direct.FlopsPerPair, eff)
			atomicAdd(&pairs, int64(cnt)*int64(scnt))
		})
	}
	s.rec.AddNearPairs(pairs)
	s.rec.AddFlops(metrics.PhaseNear, pairs*direct.FlopsPerPair)
}
