package dpfmm

import (
	"fmt"

	"nbody/internal/dp"
	"nbody/internal/geom"
)

// Multigrid is the paper's embedding of the whole hierarchy of far-field
// potentials into two layers of a 4-D array (Section 3.1, Figure 3): the
// leaf level fills one layer, and every non-leaf level l = h-i is embedded
// in the other layer on the strided subgrid with offset 2^(i-1)-1 and
// stride 2^i along each spatial axis. The embedding preserves locality
// between a box and its descendants: with at least one box per VU at some
// level, all the descendants of that box land on the same VU.
type Multigrid struct {
	M       *dp.Machine
	Depth   int
	Leaf    *dp.Grid3
	Nonleaf *dp.Grid3
}

// NewMultigrid allocates the two layers for a hierarchy of the given depth
// with vlen words per box.
func NewMultigrid(m *dp.Machine, depth, vlen int) *Multigrid {
	n := 1 << depth
	return &Multigrid{
		M:       m,
		Depth:   depth,
		Leaf:    m.NewGrid3(n, vlen),
		Nonleaf: m.NewGrid3(n, vlen),
	}
}

// Slot returns the non-leaf layer position of box c at the given level.
func (mg *Multigrid) Slot(level int, c geom.Coord3) geom.Coord3 {
	i := mg.Depth - level
	if i < 1 {
		panic("dpfmm: leaf level is stored in the leaf layer")
	}
	stride := 1 << i
	off := stride/2 - 1
	return geom.Coord3{X: c.X*stride + off, Y: c.Y*stride + off, Z: c.Z*stride + off}
}

// pivotLevel returns the shallowest level with at least one box per VU —
// the intermediate level of the paper's two-step scheme.
func (mg *Multigrid) pivotLevel() int {
	for l := 0; l <= mg.Depth; l++ {
		if (1 << (3 * l)) >= mg.M.NumVUs() {
			return l
		}
	}
	return mg.Depth
}

// Embed copies a level-sized temporary array into its strided slots of the
// non-leaf layer. With useTwoStep and a level smaller than the machine, the
// copy is routed via an intermediate pivot-level array (a small send
// followed by a local strided copy); otherwise the kind selects between the
// general send and direct aliased sectioning. Figure 7 compares these.
func (mg *Multigrid) Embed(kind dp.RemapKind, tmp *dp.Grid3, level int, useTwoStep bool) {
	mg.remapLevel(kind, tmp, level, useTwoStep, true)
}

// Extract is the inverse of Embed: fill a level-sized temporary from the
// non-leaf layer.
func (mg *Multigrid) Extract(kind dp.RemapKind, tmp *dp.Grid3, level int, useTwoStep bool) {
	mg.remapLevel(kind, tmp, level, useTwoStep, false)
}

func (mg *Multigrid) remapLevel(kind dp.RemapKind, tmp *dp.Grid3, level int, useTwoStep, embed bool) {
	nl := 1 << level
	if tmp.N != nl {
		panic(fmt.Sprintf("dpfmm: temporary extent %d != level extent %d", tmp.N, nl))
	}
	levelBoxes := func(yield func(sc, dc geom.Coord3)) {
		for z := 0; z < nl; z++ {
			for y := 0; y < nl; y++ {
				for x := 0; x < nl; x++ {
					c := geom.Coord3{X: x, Y: y, Z: z}
					s := mg.Slot(level, c)
					if embed {
						yield(c, s)
					} else {
						yield(s, c)
					}
				}
			}
		}
	}
	lp := mg.pivotLevel()
	if !useTwoStep || level >= lp {
		if embed {
			dp.Remap(kind, mg.Nonleaf, tmp, levelBoxes)
		} else {
			dp.Remap(kind, tmp, mg.Nonleaf, levelBoxes)
		}
		return
	}
	// Two-step: route through a pivot-level array. The pivot coordinate of
	// a level box is its big-array slot divided by the pivot stride, which
	// puts it on the same VU as the final slot, making step two local.
	npv := 1 << lp
	pivotStride := mg.Nonleaf.N / npv
	pivotOf := func(c geom.Coord3) geom.Coord3 {
		s := mg.Slot(level, c)
		return geom.Coord3{X: s.X / pivotStride, Y: s.Y / pivotStride, Z: s.Z / pivotStride}
	}
	mid := mg.M.NewGrid3(npv, tmp.Vlen)
	if embed {
		dp.Remap(dp.RemapSend, mid, tmp, func(yield func(sc, dc geom.Coord3)) {
			forLevel(nl, func(c geom.Coord3) { yield(c, pivotOf(c)) })
		})
		dp.Remap(dp.RemapAliased, mg.Nonleaf, mid, func(yield func(sc, dc geom.Coord3)) {
			forLevel(nl, func(c geom.Coord3) { yield(pivotOf(c), mg.Slot(level, c)) })
		})
	} else {
		dp.Remap(dp.RemapAliased, mid, mg.Nonleaf, func(yield func(sc, dc geom.Coord3)) {
			forLevel(nl, func(c geom.Coord3) { yield(mg.Slot(level, c), pivotOf(c)) })
		})
		dp.Remap(dp.RemapSend, tmp, mid, func(yield func(sc, dc geom.Coord3)) {
			forLevel(nl, func(c geom.Coord3) { yield(pivotOf(c), c) })
		})
	}
}

func forLevel(n int, fn func(c geom.Coord3)) {
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				fn(geom.Coord3{X: x, Y: y, Z: z})
			}
		}
	}
}
