package metrics

import "runtime"

// AllocDelta measures the heap-allocation cost of a region of code (one or
// more solves). It is a caller-side probe, deliberately not part of Rec:
// runtime.ReadMemStats stops the world, so the solvers never call it —
// tooling (cmd/phases) and tests wrap the solve loop explicitly.
type AllocDelta struct {
	start runtime.MemStats
}

// Start records the baseline.
func (d *AllocDelta) Start() { runtime.ReadMemStats(&d.start) }

// Stop returns the heap delta since Start: object count and bytes.
func (d *AllocDelta) Stop() (allocs, bytes int64) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return int64(m.Mallocs - d.start.Mallocs), int64(m.TotalAlloc - d.start.TotalAlloc)
}

// CaptureInto stops the probe and stores the delta in s.
func (d *AllocDelta) CaptureInto(s *Snapshot) {
	s.HeapAllocs, s.HeapBytes = d.Stop()
}
