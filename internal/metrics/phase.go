package metrics

import "fmt"

// Phase identifies one section of a solve in the per-phase accounting the
// paper's Tables 4-6 are built from. The set is the union of the phase
// boundaries of every solver in the repository: the shared-memory 3-D and
// 2-D solvers (internal/core, internal/core2) and the data-parallel machine
// expression (internal/dpfmm). A solver records only the phases it has; the
// reporting layer skips phases with no time and no flops.
type Phase int

// The phases, in canonical execution order.
const (
	// PhaseSetup is amortized preparation: translation-matrix
	// precomputation and traversal-plan construction.
	PhaseSetup Phase = iota
	// PhaseSort is per-solve particle handling: the coordinate sort /
	// counting-sort partition into leaf boxes, the box-ordered attribute
	// mirrors (the paper's 1-D to 4-D reshape), and the final scatter of
	// results back to particle order.
	PhaseSort
	// PhaseLeafOuter is step 1: particle to leaf outer approximation (P2O).
	PhaseLeafOuter
	// PhaseT1 is step 2, the upward pass: child outer to parent outer.
	PhaseT1
	// PhaseT2 is the interactive-field conversion: outer to local at one
	// level (the translation the supernode and ghost experiments target).
	PhaseT2
	// PhaseT3 is the downward shift: parent local to child local.
	PhaseT3
	// PhaseEmbed is multigrid embedding: level-sized temporaries into the
	// two-layer hierarchy storage (data-parallel solver only).
	PhaseEmbed
	// PhaseExtract is the inverse of PhaseEmbed.
	PhaseExtract
	// PhaseGhost is interactive-field data motion: ghost-region fetches or
	// CSHIFT alignment walks (data-parallel solver only).
	PhaseGhost
	// PhaseEvalLocal is step 4: leaf inner approximation to particle (L2P).
	PhaseEvalLocal
	// PhaseNear is step 5: near-field direct evaluation.
	PhaseNear
	// NumPhases bounds the phase arrays.
	NumPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseSetup:
		return "setup"
	case PhaseSort:
		return "sort"
	case PhaseLeafOuter:
		return "leaf-outer"
	case PhaseT1:
		return "upward-T1"
	case PhaseT2:
		return "convert-T2"
	case PhaseT3:
		return "downward-T3"
	case PhaseEmbed:
		return "embed"
	case PhaseExtract:
		return "extract"
	case PhaseGhost:
		return "ghost"
	case PhaseEvalLocal:
		return "eval-local"
	case PhaseNear:
		return "near-field"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}
