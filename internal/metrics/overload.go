package metrics

import "sync/atomic"

// OverloadStats is a snapshot of the overload-control layer's counters: how
// often the serving layer shed a request whose predicted completion missed
// its deadline (at admission, or stale at dequeue), and what the adaptive
// brownout controller did (requests served degraded, level raises and
// drops). Like RecoveryStats, every field is zero on an unloaded process,
// so any nonzero value in a report is a load event worth reading.
type OverloadStats struct {
	Shed           int64 `json:"shed"`            // rejected at admission: predicted completion past deadline
	ShedStale      int64 `json:"shed_stale"`      // dropped at dequeue: deadline unmeetable before the solve started
	Browned        int64 `json:"browned"`         // requests served at brownout-degraded fidelity
	BrownoutRaises int64 `json:"brownout_raises"` // controller level increases
	BrownoutDrops  int64 `json:"brownout_drops"`  // controller level decreases
}

// Zero reports whether no overload event has been recorded.
func (o OverloadStats) Zero() bool {
	return o == OverloadStats{}
}

// The overload counters are package-level atomics for the same reason the
// recovery counters are: the admission layer spans every solver and tenant,
// so its events belong to the process, not to any one solver's recorder.
var overload struct {
	shed           atomic.Int64
	shedStale      atomic.Int64
	browned        atomic.Int64
	brownoutRaises atomic.Int64
	brownoutDrops  atomic.Int64
}

// AddShed counts n admission-time deadline sheds.
func AddShed(n int64) { overload.shed.Add(n) }

// AddShedStale counts n dequeue-time stale drops.
func AddShedStale(n int64) { overload.shedStale.Add(n) }

// AddBrowned counts n requests served at degraded fidelity under brownout.
func AddBrowned(n int64) { overload.browned.Add(n) }

// AddBrownoutRaises counts n brownout level increases.
func AddBrownoutRaises(n int64) { overload.brownoutRaises.Add(n) }

// AddBrownoutDrops counts n brownout level decreases.
func AddBrownoutDrops(n int64) { overload.brownoutDrops.Add(n) }

// ReadOverload returns the current overload counters.
func ReadOverload() OverloadStats {
	return OverloadStats{
		Shed:           overload.shed.Load(),
		ShedStale:      overload.shedStale.Load(),
		Browned:        overload.browned.Load(),
		BrownoutRaises: overload.brownoutRaises.Load(),
		BrownoutDrops:  overload.brownoutDrops.Load(),
	}
}

// ResetOverload zeroes the overload counters (tests and long-lived tools).
func ResetOverload() {
	overload.shed.Store(0)
	overload.shedStale.Store(0)
	overload.browned.Store(0)
	overload.brownoutRaises.Store(0)
	overload.brownoutDrops.Store(0)
}
