package metrics

import "nbody/internal/sched"

// CaptureWorkers copies the scheduler's per-participant utilization
// counters into the snapshot. The counters only accumulate while
// sched.EnableStats(true) is in effect; a typical sequence is
//
//	sched.EnableStats(true)
//	sched.ResetStats()
//	... solve ...
//	st := solver.Stats()
//	st.CaptureWorkers()
func (s *Snapshot) CaptureWorkers() {
	ws := sched.ReadStats()
	s.Workers = s.Workers[:0]
	for _, w := range ws {
		s.Workers = append(s.Workers, WorkerStat{Slot: w.Slot, Busy: w.Busy, Jobs: w.Jobs})
	}
}
