package metrics

import "sync/atomic"

// PlannerStats is a snapshot of the plan subsystem's counters: how often an
// automatic configuration was answered from the tuned-plan table versus the
// analytic cost model, how many measured searches ran (and how long), the
// provenance mix of every resolved plan, and the persistent store traffic.
// Like the recovery and overload counters, every field is zero on a process
// that never planned anything, so any nonzero value in a report is a
// planning event worth reading.
type PlannerStats struct {
	TuneHits      int64 `json:"tune_hits"`      // auto-resolutions answered from the tuned table
	TuneMisses    int64 `json:"tune_misses"`    // auto-resolutions that fell back to the analytic model
	Searches      int64 `json:"searches"`       // measured candidate searches actually run
	SearchNS      int64 `json:"search_ns"`      // total wall time spent inside measured searches
	PlansPinned   int64 `json:"plans_pinned"`   // resolutions where the caller pinned the depth
	PlansAnalytic int64 `json:"plans_analytic"` // resolutions served by the analytic cost model
	PlansTuned    int64 `json:"plans_tuned"`    // resolutions served by a tuned (measured) plan
	StoreLoads    int64 `json:"store_loads"`    // tuned-plan store files loaded
	StoreSaves    int64 `json:"store_saves"`    // tuned-plan store files written
}

// Zero reports whether no planning event has been recorded.
func (p PlannerStats) Zero() bool {
	return p == PlannerStats{}
}

// The planner counters are package-level atomics for the same reason the
// recovery and overload counters are: plan resolution spans every solver,
// command, and tenant, so its events belong to the process.
var planner struct {
	tuneHits      atomic.Int64
	tuneMisses    atomic.Int64
	searches      atomic.Int64
	searchNS      atomic.Int64
	plansPinned   atomic.Int64
	plansAnalytic atomic.Int64
	plansTuned    atomic.Int64
	storeLoads    atomic.Int64
	storeSaves    atomic.Int64
}

// AddTuneHits counts n tuned-table hits during auto-resolution.
func AddTuneHits(n int64) { planner.tuneHits.Add(n) }

// AddTuneMisses counts n auto-resolutions that missed the tuned table.
func AddTuneMisses(n int64) { planner.tuneMisses.Add(n) }

// AddSearches counts n measured candidate searches.
func AddSearches(n int64) { planner.searches.Add(n) }

// AddSearchNS adds n nanoseconds of measured-search wall time.
func AddSearchNS(n int64) { planner.searchNS.Add(n) }

// AddPlansPinned counts n resolutions with a caller-pinned depth.
func AddPlansPinned(n int64) { planner.plansPinned.Add(n) }

// AddPlansAnalytic counts n resolutions served by the analytic model.
func AddPlansAnalytic(n int64) { planner.plansAnalytic.Add(n) }

// AddPlansTuned counts n resolutions served by a tuned plan.
func AddPlansTuned(n int64) { planner.plansTuned.Add(n) }

// AddStoreLoads counts n tuned-plan store loads.
func AddStoreLoads(n int64) { planner.storeLoads.Add(n) }

// AddStoreSaves counts n tuned-plan store saves.
func AddStoreSaves(n int64) { planner.storeSaves.Add(n) }

// ReadPlanner returns the current planner counters.
func ReadPlanner() PlannerStats {
	return PlannerStats{
		TuneHits:      planner.tuneHits.Load(),
		TuneMisses:    planner.tuneMisses.Load(),
		Searches:      planner.searches.Load(),
		SearchNS:      planner.searchNS.Load(),
		PlansPinned:   planner.plansPinned.Load(),
		PlansAnalytic: planner.plansAnalytic.Load(),
		PlansTuned:    planner.plansTuned.Load(),
		StoreLoads:    planner.storeLoads.Load(),
		StoreSaves:    planner.storeSaves.Load(),
	}
}

// ResetPlanner zeroes the planner counters (tests and long-lived tools).
func ResetPlanner() {
	planner.tuneHits.Store(0)
	planner.tuneMisses.Store(0)
	planner.searches.Store(0)
	planner.searchNS.Store(0)
	planner.plansPinned.Store(0)
	planner.plansAnalytic.Store(0)
	planner.plansTuned.Store(0)
	planner.storeLoads.Store(0)
	planner.storeSaves.Store(0)
}
