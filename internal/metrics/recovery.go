package metrics

import "sync/atomic"

// RecoveryStats is a snapshot of the self-healing layer's counters: how
// often the retry supervisor re-attempted a solve, tripped a circuit
// breaker, stepped down the degradation ladder, and how many simulation
// snapshots were written or restored. All five are zero on a healthy run —
// the invariant tests assert exactly that — so any nonzero value in a
// report is a recovery event worth reading.
type RecoveryStats struct {
	Retries      int64 `json:"retries"`       // re-attempts beyond the first, per rung
	BreakerTrips int64 `json:"breaker_trips"` // circuit breakers opened
	Degradations int64 `json:"degradations"`  // ladder steps to a lower rung
	Checkpoints  int64 `json:"checkpoints"`   // simulation snapshots written
	Resumes      int64 `json:"resumes"`       // simulations restored from a snapshot
}

// Zero reports whether no recovery event has been recorded.
func (r RecoveryStats) Zero() bool {
	return r == RecoveryStats{}
}

// The recovery counters are package-level atomics rather than fields of a
// Rec: a supervisor spans solvers (its whole point is to move between
// them), so its events belong to the process, not to any one solver's
// phase recorder.
var recovery struct {
	retries      atomic.Int64
	breakerTrips atomic.Int64
	degradations atomic.Int64
	checkpoints  atomic.Int64
	resumes      atomic.Int64
}

// AddRetries counts n supervisor re-attempts.
func AddRetries(n int64) { recovery.retries.Add(n) }

// AddBreakerTrips counts n circuit-breaker openings.
func AddBreakerTrips(n int64) { recovery.breakerTrips.Add(n) }

// AddDegradations counts n degradation-ladder rung changes.
func AddDegradations(n int64) { recovery.degradations.Add(n) }

// AddCheckpoints counts n written simulation snapshots.
func AddCheckpoints(n int64) { recovery.checkpoints.Add(n) }

// AddResumes counts n simulations restored from snapshots.
func AddResumes(n int64) { recovery.resumes.Add(n) }

// ReadRecovery returns the current recovery counters.
func ReadRecovery() RecoveryStats {
	return RecoveryStats{
		Retries:      recovery.retries.Load(),
		BreakerTrips: recovery.breakerTrips.Load(),
		Degradations: recovery.degradations.Load(),
		Checkpoints:  recovery.checkpoints.Load(),
		Resumes:      recovery.resumes.Load(),
	}
}

// ResetRecovery zeroes the recovery counters (tests and long-lived tools).
func ResetRecovery() {
	recovery.retries.Store(0)
	recovery.breakerTrips.Store(0)
	recovery.degradations.Store(0)
	recovery.checkpoints.Store(0)
	recovery.resumes.Store(0)
}
