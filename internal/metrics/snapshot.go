package metrics

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// WorkerStat is the utilization of one scheduler participant (slot 0 is
// the submitting goroutine, slots 1+ are pool workers).
type WorkerStat struct {
	Slot int           `json:"slot"`
	Busy time.Duration `json:"busy_ns"`
	Jobs int64         `json:"jobs"`
}

// Snapshot is a materialized copy of a Rec: the per-phase accounting of
// one or more solves, in the shape the paper's Tables 4-6 report (time and
// sustained Mflops/s per phase). The flop counts are analytic (BLAS shapes
// and pair counts); the times are measured.
type Snapshot struct {
	Flops [NumPhases]int64
	Time  [NumPhases]time.Duration
	Calls [NumPhases]int64
	Bytes [NumPhases]int64

	Particles int
	Depth     int
	K         int

	// Backend is the compute backend (internal/simd) that was active when
	// the snapshot was read — "scalar", "avx2", ... — recorded so that
	// benchmark artifacts are only ever compared like against like.
	Backend string

	// T2Count is the number of interactive-field translations actually
	// applied (after boundary clipping and supernode reduction); the
	// headline count the supernode optimization reduces.
	T2Count int64
	// NearPairs is the number of particle-particle interactions evaluated.
	NearPairs int64

	// Workers, when captured, holds per-worker scheduler utilization.
	Workers []WorkerStat

	// HeapAllocs/HeapBytes are the heap-allocation delta across the solve
	// loop, when captured with an AllocDelta probe (the solvers never read
	// MemStats themselves — it stops the world).
	HeapAllocs int64
	HeapBytes  int64

	// Recovery, when captured with CaptureRecovery, holds the self-healing
	// layer's counters (retries, breaker trips, ladder degradations,
	// checkpoints, resumes). All-zero on a healthy run.
	Recovery *RecoveryStats

	// Overload, when captured with CaptureOverload, holds the
	// overload-control layer's counters (deadline sheds, stale drops,
	// brownout activity). All-zero on an unloaded process.
	Overload *OverloadStats

	// Planner, when captured with CapturePlanner, holds the plan
	// subsystem's counters (tune hits/misses, measured searches, plan
	// provenance, store traffic). All-zero on a process that never planned.
	Planner *PlannerStats
}

// CaptureRecovery copies the process-wide recovery counters into the
// snapshot, so reports and JSON output carry them alongside the phases.
func (s *Snapshot) CaptureRecovery() {
	r := ReadRecovery()
	s.Recovery = &r
}

// CaptureOverload copies the process-wide overload counters into the
// snapshot, alongside the phases and the recovery counters.
func (s *Snapshot) CaptureOverload() {
	o := ReadOverload()
	s.Overload = &o
}

// CapturePlanner copies the process-wide planner counters into the
// snapshot, alongside the phases, recovery, and overload sections.
func (s *Snapshot) CapturePlanner() {
	p := ReadPlanner()
	s.Planner = &p
}

// Diff returns the per-phase delta s minus prev: the accounting of exactly
// the solves that happened between the two snapshots. Callers that hold a
// solver exclusively (e.g. a server request that checked a plan out of a
// cache) use it to scope the solver's cumulative recorder to one request.
// The shape fields (Particles, Depth, K, Backend) are taken from s;
// worker, heap, and recovery captures do not subtract meaningfully and are
// cleared.
func (s *Snapshot) Diff(prev *Snapshot) Snapshot {
	d := *s
	for p := Phase(0); p < NumPhases; p++ {
		d.Flops[p] -= prev.Flops[p]
		d.Time[p] -= prev.Time[p]
		d.Calls[p] -= prev.Calls[p]
		d.Bytes[p] -= prev.Bytes[p]
	}
	d.T2Count -= prev.T2Count
	d.NearPairs -= prev.NearPairs
	d.Workers = nil
	d.HeapAllocs, d.HeapBytes = 0, 0
	d.Recovery = nil
	d.Overload = nil
	d.Planner = nil
	return d
}

// TotalFlops sums the flops of every per-solve phase. Setup is excluded:
// translation-matrix construction is amortized across time steps, as in
// the paper's performance accounting.
func (s *Snapshot) TotalFlops() int64 {
	var t int64
	for p := PhaseSort; p < NumPhases; p++ {
		t += s.Flops[p]
	}
	return t
}

// TotalTime sums the measured time of every per-solve phase (Setup
// excluded, the sort included).
func (s *Snapshot) TotalTime() time.Duration {
	var t time.Duration
	for p := PhaseSort; p < NumPhases; p++ {
		t += s.Time[p]
	}
	return t
}

// TraversalFlops returns the flops of the hierarchy traversal only (the
// T1/T2/T3 translations), the quantity the optimal-depth analysis balances
// against the near field.
func (s *Snapshot) TraversalFlops() int64 {
	return s.Flops[PhaseT1] + s.Flops[PhaseT2] + s.Flops[PhaseT3]
}

// TraversalTime returns the measured time of the hierarchy traversal: the
// translations plus their supporting data motion (embed/extract, ghost
// exchange) on solvers that have those phases.
func (s *Snapshot) TraversalTime() time.Duration {
	return s.Time[PhaseT1] + s.Time[PhaseT2] + s.Time[PhaseT3] +
		s.Time[PhaseEmbed] + s.Time[PhaseExtract] + s.Time[PhaseGhost]
}

// Mflops returns the sustained Mflops/s of phase p (0 when untimed).
func (s *Snapshot) Mflops(p Phase) float64 {
	sec := s.Time[p].Seconds()
	if !(sec > 0) {
		return 0
	}
	return float64(s.Flops[p]) / sec / 1e6
}

// active reports whether phase p recorded anything worth a table row.
func (s *Snapshot) active(p Phase) bool {
	return s.Time[p] != 0 || s.Flops[p] != 0 || s.Calls[p] != 0 || s.Bytes[p] != 0
}

// String formats a compact per-phase report (the historical core.Stats
// format, with inactive phases skipped).
// backendSuffix renders the backend tag for the report headers; snapshots
// predating the dispatch layer (zero value) stay tagless.
func backendSuffix(backend string) string {
	if backend == "" {
		return ""
	}
	return " backend=" + backend
}

func (s *Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d depth=%d K=%d%s\n", s.Particles, s.Depth, s.K, backendSuffix(s.Backend))
	for p := Phase(0); p < NumPhases; p++ {
		if p != PhaseSetup && !s.active(p) {
			continue
		}
		fmt.Fprintf(&b, "  %-11s %12d flops  %v\n", p.String(), s.Flops[p], s.Time[p].Round(time.Microsecond))
	}
	return b.String()
}

// Table formats the paper-style per-phase breakdown: wall time, sustained
// Mflops/s, and share of the total per-solve time for every active phase,
// followed by a total row (Tables 4-6 layout).
func (s *Snapshot) Table() string {
	total := s.TotalTime()
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d depth=%d K=%d%s\n", s.Particles, s.Depth, s.K, backendSuffix(s.Backend))
	fmt.Fprintf(&b, "  %-11s %14s %10s %7s\n", "phase", "time", "Mflops/s", "%solve")
	for p := PhaseSort; p < NumPhases; p++ {
		if !s.active(p) {
			continue
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(s.Time[p]) / float64(total)
		}
		fmt.Fprintf(&b, "  %-11s %14v %10.1f %6.1f%%\n",
			p.String(), s.Time[p].Round(time.Microsecond), s.Mflops(p), pct)
	}
	totalMf := 0.0
	if sec := total.Seconds(); sec > 0 {
		totalMf = float64(s.TotalFlops()) / sec / 1e6
	}
	fmt.Fprintf(&b, "  %-11s %14v %10.1f %6.1f%%\n", "total", total.Round(time.Microsecond), totalMf, 100.0)
	if s.Time[PhaseSetup] != 0 {
		fmt.Fprintf(&b, "  (setup, amortized: %v)\n", s.Time[PhaseSetup].Round(time.Microsecond))
	}
	if s.Recovery != nil && !s.Recovery.Zero() {
		r := s.Recovery
		fmt.Fprintf(&b, "  recovery: %d retries, %d breaker trips, %d degradations, %d checkpoints, %d resumes\n",
			r.Retries, r.BreakerTrips, r.Degradations, r.Checkpoints, r.Resumes)
	}
	if s.Overload != nil && !s.Overload.Zero() {
		o := s.Overload
		fmt.Fprintf(&b, "  overload: %d shed, %d stale drops, %d browned, %d brownout raises, %d drops\n",
			o.Shed, o.ShedStale, o.Browned, o.BrownoutRaises, o.BrownoutDrops)
	}
	if s.Planner != nil && !s.Planner.Zero() {
		p := s.Planner
		fmt.Fprintf(&b, "  planner: %d tune hits, %d misses, %d searches (%v), plans %d pinned / %d analytic / %d tuned\n",
			p.TuneHits, p.TuneMisses, p.Searches, time.Duration(p.SearchNS).Round(time.Microsecond),
			p.PlansPinned, p.PlansAnalytic, p.PlansTuned)
	}
	return b.String()
}

// phaseJSON is one row of the machine-readable form.
type phaseJSON struct {
	Phase  string  `json:"phase"`
	NS     int64   `json:"ns"`
	Flops  int64   `json:"flops"`
	Calls  int64   `json:"calls"`
	Bytes  int64   `json:"bytes,omitempty"`
	Mflops float64 `json:"mflops"`
}

// MarshalJSON emits the snapshot with phases as named rows (inactive
// phases skipped), plus the totals and the shape, so downstream tooling
// (scripts/bench.sh, regression diffing) does not depend on Phase ordinals.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	phases := make([]phaseJSON, 0, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		if !s.active(p) {
			continue
		}
		phases = append(phases, phaseJSON{
			Phase:  p.String(),
			NS:     int64(s.Time[p]),
			Flops:  s.Flops[p],
			Calls:  s.Calls[p],
			Bytes:  s.Bytes[p],
			Mflops: s.Mflops(p),
		})
	}
	return json.Marshal(struct {
		Particles  int            `json:"particles"`
		Depth      int            `json:"depth"`
		K          int            `json:"k"`
		Backend    string         `json:"backend,omitempty"`
		TotalNS    int64          `json:"total_ns"`
		TotalFlops int64          `json:"total_flops"`
		T2Count    int64          `json:"t2_count"`
		NearPairs  int64          `json:"near_pairs"`
		HeapAllocs int64          `json:"heap_allocs,omitempty"`
		HeapBytes  int64          `json:"heap_bytes,omitempty"`
		Phases     []phaseJSON    `json:"phases"`
		Workers    []WorkerStat   `json:"workers,omitempty"`
		Recovery   *RecoveryStats `json:"recovery,omitempty"`
		Overload   *OverloadStats `json:"overload,omitempty"`
		Planner    *PlannerStats  `json:"planner,omitempty"`
	}{
		Particles:  s.Particles,
		Depth:      s.Depth,
		K:          s.K,
		Backend:    s.Backend,
		TotalNS:    int64(s.TotalTime()),
		TotalFlops: s.TotalFlops(),
		T2Count:    s.T2Count,
		NearPairs:  s.NearPairs,
		HeapAllocs: s.HeapAllocs,
		HeapBytes:  s.HeapBytes,
		Phases:     phases,
		Workers:    s.Workers,
		Recovery:   s.Recovery,
		Overload:   s.Overload,
		Planner:    s.Planner,
	})
}
