// Package metrics computes the two comparison measures the paper proposes
// for N-body implementations (Section 1, Table 1): the efficiency of
// floating-point operations (useful flops divided by machine peak) and
// cycles per particle (machine cycles times nodes divided by particles),
// which "incorporates machine size, clock rate, and arithmetic complexities
// of different methods".
package metrics

import (
	"fmt"
	"time"

	"nbody/internal/dp"
)

// Report is one row of a Table 1-style comparison.
type Report struct {
	Name      string
	Particles int
	Nodes     int
	ClockMHz  float64
	// PeakFlopsPerNode is the per-node peak (VUs * flops/cycle * clock).
	PeakFlopsPerNode float64

	Flops         int64   // useful floating-point operations
	ComputeCycles float64 // critical-path compute cycles (max over VUs)
	CommCycles    float64 // modeled communication cycles
	CopyCycles    float64 // modeled local copy/mask cycles

	Wall time.Duration // measured host wall time (informational)
}

// FromMachine assembles a report from a dp machine run.
func FromMachine(name string, m *dp.Machine, counters dp.Counters, particles int) Report {
	maxC, _ := m.MaxComputeCycles()
	return Report{
		Name:             name,
		Particles:        particles,
		Nodes:            m.Nodes,
		ClockMHz:         m.Cost.ClockMHz,
		PeakFlopsPerNode: float64(m.VUsPerNode) * m.Cost.FlopsPerCycle * m.Cost.ClockMHz * 1e6,
		Flops:            counters.Flops,
		ComputeCycles:    maxC,
		CommCycles:       counters.CommCycles(),
		CopyCycles:       counters.CopyCycles(),
	}
}

// ModelCycles returns the modeled critical-path cycles of the run: compute
// plus communication plus copying (the data-parallel phases serialize).
func (r Report) ModelCycles() float64 { return r.ComputeCycles + r.CommCycles + r.CopyCycles }

// ModelSeconds converts ModelCycles to simulated seconds.
func (r Report) ModelSeconds() float64 { return r.ModelCycles() / (r.ClockMHz * 1e6) }

// Efficiency returns useful flops over peak machine flops for the modeled
// duration: the paper's primary comparison measure.
func (r Report) Efficiency() float64 {
	peak := r.PeakFlopsPerNode * float64(r.Nodes)
	if peak == 0 || r.ModelSeconds() == 0 {
		return 0
	}
	return float64(r.Flops) / (peak * r.ModelSeconds())
}

// CyclesPerParticle returns machine cycles times nodes per particle, the
// paper's machine-size-normalized cost measure.
func (r Report) CyclesPerParticle() float64 {
	if r.Particles == 0 {
		return 0
	}
	return r.ModelCycles() * float64(r.Nodes) / float64(r.Particles)
}

// CommFraction returns the fraction of modeled time spent communicating
// (the paper reports 10-25% for its configurations).
func (r Report) CommFraction() float64 {
	t := r.ModelCycles()
	if t == 0 {
		return 0
	}
	return r.CommCycles / t
}

// Mflops returns the modeled sustained Mflops/s of the whole machine.
func (r Report) Mflops() float64 {
	s := r.ModelSeconds()
	if !(s > 0) {
		return 0
	}
	return float64(r.Flops) / s / 1e6
}

// String formats the row in Table 1 style.
func (r Report) String() string {
	return fmt.Sprintf("%-28s N=%-9d P=%-4d eff=%5.1f%%  cycles/particle=%-9.0f comm=%4.1f%%",
		r.Name, r.Particles, r.Nodes, 100*r.Efficiency(), r.CyclesPerParticle(), 100*r.CommFraction())
}
