package metrics_test

// Invariant tests of the instrumentation layer, run against live solves:
// phase wall times must tile the measured solve time, analytic flop counts
// must agree with the BLAS call counters and with the closed-form phase
// shapes for the paper's two headline configurations (K=12 and K=72), and
// the counters must be safe under concurrent recording (this file is run
// with -race in CI).

import (
	"sync"
	"testing"
	"time"

	"nbody/internal/blas"
	"nbody/internal/core"
	"nbody/internal/direct"
	"nbody/internal/dp"
	"nbody/internal/dpfmm"
	"nbody/internal/metrics"
	"nbody/internal/testutil"
)

// TestPhaseTimesTileSolve checks that the per-phase spans of the
// shared-memory solver account for (nearly) all of the measured wall time
// of a solve: the phases are sequential and non-overlapping, so their sum
// must not exceed the wall time, and gaps (unspanned work) must stay
// small.
func TestPhaseTimesTileSolve(t *testing.T) {
	pos, q := testutil.RandomSystem(8192, 7)
	s, err := core.NewSolver(testutil.UnitBox(), core.Config{Degree: 5, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := s.Potentials(pos, q); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	st := s.Stats()
	total := st.TotalTime()
	if total <= 0 {
		t.Fatal("no phase time recorded")
	}
	if total > wall+wall/10 {
		t.Errorf("phase times sum to %v, more than the %v wall time", total, wall)
	}
	if total < wall/2 {
		t.Errorf("phase times sum to %v, under half the %v wall time: a phase is unspanned", total, wall)
	}
}

// dpSolve runs one data-parallel solve and returns its snapshot plus the
// BLAS counters it generated.
func dpSolve(t *testing.T, n, depth, degree int) (*metrics.Snapshot, blas.Counters, core.Config) {
	t.Helper()
	pos, q := testutil.RandomSystem(n, 8)
	m, err := dp.NewMachine(8, 4, dp.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Degree: degree, Depth: depth}
	s, err := dpfmm.NewSolver(m, testutil.UnitBox(), cfg, dpfmm.LinearizedAliased)
	if err != nil {
		t.Fatal(err)
	}
	blas.EnableCounters(true)
	defer blas.EnableCounters(false)
	blas.ResetCounters()
	if _, err := s.Potentials(pos, q); err != nil {
		t.Fatal(err)
	}
	ncfg, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	return s.Stats(), blas.ReadCounters(), ncfg
}

// TestFlopsClosedForm checks the analytic flop accounting of the
// data-parallel solver against both the independently counted BLAS calls
// and the closed-form phase shapes, for the paper's K=12 (D=5) and K=72
// (D=11) configurations. Every translation in dpfmm is a k x k Dgemv, so
// the traversal flops must equal the gemv counter exactly.
func TestFlopsClosedForm(t *testing.T) {
	for _, tc := range []struct {
		degree, wantK int
	}{
		{5, 12},
		{11, 72},
	} {
		const n, depth = 4096, 3
		st, c, cfg := dpSolve(t, n, depth, tc.degree)
		k := st.K
		if k != tc.wantK {
			t.Errorf("D=%d: K = %d, want %d", tc.degree, k, tc.wantK)
		}
		if st.Particles != n || st.Depth != depth {
			t.Errorf("D=%d: shape (%d, %d), want (%d, %d)", tc.degree, st.Particles, st.Depth, n, depth)
		}

		if got := st.TraversalFlops(); got != c.GemvFlops {
			t.Errorf("D=%d: traversal flops %d != counted gemv flops %d", tc.degree, got, c.GemvFlops)
		}
		// T1 and T3 visit the same parent grids (levels 2..depth-1), eight
		// octants of one k x k product per parent box.
		var hier int64
		for l := 2; l < depth; l++ {
			boxes := int64(1) << (3 * l)
			hier += 8 * blas.DgemmFlops(k, k, 1) * boxes
		}
		if st.Flops[metrics.PhaseT1] != hier {
			t.Errorf("D=%d: T1 flops %d, want %d", tc.degree, st.Flops[metrics.PhaseT1], hier)
		}
		if st.Flops[metrics.PhaseT3] != hier {
			t.Errorf("D=%d: T3 flops %d, want %d", tc.degree, st.Flops[metrics.PhaseT3], hier)
		}
		// One k x k product per applied interactive translation.
		if want := st.T2Count * blas.DgemmFlops(k, k, 1); st.Flops[metrics.PhaseT2] != want {
			t.Errorf("D=%d: T2 flops %d, want %d (%d translations)",
				tc.degree, st.Flops[metrics.PhaseT2], want, st.T2Count)
		}
		// Leaf sampling and evaluation are per-particle closed forms.
		if want := int64(n) * int64(k) * direct.FlopsPerPair; st.Flops[metrics.PhaseLeafOuter] != want {
			t.Errorf("D=%d: leaf-outer flops %d, want %d", tc.degree, st.Flops[metrics.PhaseLeafOuter], want)
		}
		if want := int64(n) * int64(k) * int64(cfg.M+1) * 6; st.Flops[metrics.PhaseEvalLocal] != want {
			t.Errorf("D=%d: eval-local flops %d, want %d", tc.degree, st.Flops[metrics.PhaseEvalLocal], want)
		}
		if want := st.NearPairs * direct.FlopsPerPair; st.Flops[metrics.PhaseNear] != want {
			t.Errorf("D=%d: near flops %d, want %d (%d pairs)",
				tc.degree, st.Flops[metrics.PhaseNear], want, st.NearPairs)
		}
	}
}

// TestRecConcurrent hammers one Rec from many goroutines; with -race this
// proves the recording paths are race-free, and the final totals prove no
// increments are lost.
func TestRecConcurrent(t *testing.T) {
	var rec metrics.Rec
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := rec.Begin(metrics.PhaseT2)
				rec.AddFlops(metrics.PhaseT2, 3)
				rec.AddT2(1)
				rec.AddNearPairs(2)
				rec.AddBytes(metrics.PhaseGhost, 8)
				sp.End()
			}
		}()
	}
	// Concurrent reads must also be safe.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var snap metrics.Snapshot
		for i := 0; i < 100; i++ {
			rec.ReadInto(&snap)
		}
	}()
	wg.Wait()
	<-done

	st := rec.Snapshot()
	const total = workers * perWorker
	if st.Flops[metrics.PhaseT2] != 3*total {
		t.Errorf("flops %d, want %d", st.Flops[metrics.PhaseT2], 3*total)
	}
	if st.T2Count != total || st.NearPairs != 2*total {
		t.Errorf("T2=%d pairs=%d, want %d and %d", st.T2Count, st.NearPairs, total, 2*total)
	}
	if st.Calls[metrics.PhaseT2] != total {
		t.Errorf("calls %d, want %d", st.Calls[metrics.PhaseT2], total)
	}
	if st.Bytes[metrics.PhaseGhost] != 8*total {
		t.Errorf("bytes %d, want %d", st.Bytes[metrics.PhaseGhost], 8*total)
	}
}

// allocSink keeps the test allocation live so the compiler cannot elide it.
var allocSink []byte

// TestAllocDelta checks the caller-side heap probe: a known allocation
// inside the probed region must show up in both the object count and the
// byte count, and CaptureInto must land the delta in the snapshot.
func TestAllocDelta(t *testing.T) {
	const size = 1 << 20
	var d metrics.AllocDelta
	d.Start()
	allocSink = make([]byte, size)
	var st metrics.Snapshot
	d.CaptureInto(&st)
	if st.HeapAllocs < 1 {
		t.Errorf("HeapAllocs = %d, want >= 1", st.HeapAllocs)
	}
	if st.HeapBytes < size {
		t.Errorf("HeapBytes = %d, want >= %d", st.HeapBytes, size)
	}
	_ = allocSink
}

// TestNilRecInert checks the disabled fast path: every method of a nil
// *Rec must be a no-op, including spans begun on it.
func TestNilRecInert(t *testing.T) {
	var rec *metrics.Rec
	sp := rec.Begin(metrics.PhaseT1)
	rec.AddFlops(metrics.PhaseT1, 10)
	rec.AddT2(1)
	rec.AddNearPairs(1)
	rec.AddBytes(metrics.PhaseGhost, 1)
	rec.SetShape(1, 2, 3)
	sp.End()
	if st := rec.Snapshot(); st == nil || st.TotalFlops() != 0 {
		t.Errorf("nil Rec snapshot not empty: %+v", st)
	}
}

// TestRecoveryCountersConcurrent hammers the process-wide recovery counters
// from many goroutines; with -race this proves the recording paths are
// race-free, and the exact final totals prove no increments are lost.
func TestRecoveryCountersConcurrent(t *testing.T) {
	metrics.ResetRecovery()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				metrics.AddRetries(1)
				metrics.AddBreakerTrips(2)
				metrics.AddDegradations(3)
				metrics.AddCheckpoints(4)
				metrics.AddResumes(5)
			}
		}()
	}
	// Concurrent reads must also be safe.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = metrics.ReadRecovery()
		}
	}()
	wg.Wait()
	<-done

	rec := metrics.ReadRecovery()
	const total = workers * perWorker
	want := metrics.RecoveryStats{
		Retries:      total,
		BreakerTrips: 2 * total,
		Degradations: 3 * total,
		Checkpoints:  4 * total,
		Resumes:      5 * total,
	}
	if rec != want {
		t.Errorf("recovery counters %+v, want %+v", rec, want)
	}
	metrics.ResetRecovery()
	if rec := metrics.ReadRecovery(); !rec.Zero() {
		t.Errorf("counters after reset: %+v, want zero", rec)
	}
}

// TestRecoveryZeroOnHappyPath runs a full healthy solve and asserts the
// recovery layer recorded nothing: the counters only move when something
// actually goes wrong, so any nonzero value in a report is signal.
func TestRecoveryZeroOnHappyPath(t *testing.T) {
	metrics.ResetRecovery()
	pos, q := testutil.RandomSystem(4096, 9)
	s, err := core.NewSolver(testutil.UnitBox(), core.Config{Degree: 5, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Potentials(pos, q); err != nil {
		t.Fatal(err)
	}
	if rec := metrics.ReadRecovery(); !rec.Zero() {
		t.Errorf("healthy solve recorded recovery events: %+v", rec)
	}

	// A snapshot captured on a healthy run must omit the recovery section
	// from both the table and the JSON.
	snap := s.Stats()
	snap.CaptureRecovery()
	if snap.Recovery != nil && !snap.Recovery.Zero() {
		t.Errorf("captured recovery stats %+v on a healthy run", snap.Recovery)
	}
}
