package metrics

import (
	"math"
	"strings"
	"testing"

	"nbody/internal/dp"
)

func TestReportArithmetic(t *testing.T) {
	r := Report{
		Name:             "test",
		Particles:        1000,
		Nodes:            4,
		ClockMHz:         40,
		PeakFlopsPerNode: 160e6,
		Flops:            64e6,
		ComputeCycles:    30e6,
		CommCycles:       8e6,
		CopyCycles:       2e6,
	}
	if got := r.ModelCycles(); got != 40e6 {
		t.Errorf("ModelCycles = %g", got)
	}
	if got := r.ModelSeconds(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("ModelSeconds = %g", got)
	}
	// 64e6 flops over 1 s on 4x160e6 peak: 10%.
	if got := r.Efficiency(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Efficiency = %g", got)
	}
	// 40e6 cycles * 4 nodes / 1000 particles.
	if got := r.CyclesPerParticle(); math.Abs(got-160e3) > 1e-6 {
		t.Errorf("CyclesPerParticle = %g", got)
	}
	if got := r.CommFraction(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("CommFraction = %g", got)
	}
	if got := r.Mflops(); math.Abs(got-64) > 1e-9 {
		t.Errorf("Mflops = %g", got)
	}
	if !strings.Contains(r.String(), "test") {
		t.Error("String missing name")
	}
}

func TestReportZeroGuards(t *testing.T) {
	var r Report
	if r.Efficiency() != 0 || r.CyclesPerParticle() != 0 || r.CommFraction() != 0 || r.Mflops() != 0 {
		t.Error("zero report should produce zeros, not NaN/Inf")
	}
}

func TestFromMachine(t *testing.T) {
	m, err := dp.NewMachine(4, 4, dp.CostModel{})
	if err != nil {
		t.Fatal(err)
	}
	m.ChargeCompute(0, 1000, 1)
	g := m.NewGrid3(4, 2)
	g.CShift(dp.AxisX, 1)
	r := FromMachine("run", m, m.Counters(), 500)
	if r.Nodes != 4 || r.Particles != 500 {
		t.Errorf("identity fields wrong: %+v", r)
	}
	if r.PeakFlopsPerNode != 4*1*40e6 {
		t.Errorf("peak = %g", r.PeakFlopsPerNode)
	}
	if r.Flops != 1000 {
		t.Errorf("flops = %d", r.Flops)
	}
	if r.ComputeCycles != 1000 {
		t.Errorf("compute cycles = %g", r.ComputeCycles)
	}
	if r.CommCycles <= 0 {
		t.Error("no comm cycles from shift")
	}
}
