package metrics

import (
	"sync/atomic"
	"time"

	"nbody/internal/simd"
)

// Rec is a phase-scoped recorder: monotonic wall time, analytic flop
// counts, call counts, and moved-byte counts, each accumulated per Phase,
// plus the two headline interaction counters (T2 translations, near-field
// pairs). All counters are atomic, so concurrent workers may record into
// one Rec without coordination.
//
// Every method is nil-safe: a nil *Rec is the disabled sink, and every
// call on it is a branch on a register — no time syscall, no atomic
// traffic, no allocation. Hot paths therefore keep their instrumentation
// compiled in unconditionally and pay only when a recorder is attached.
type Rec struct {
	ns    [NumPhases]atomic.Int64
	flops [NumPhases]atomic.Int64
	calls [NumPhases]atomic.Int64
	bytes [NumPhases]atomic.Int64

	t2Count   atomic.Int64
	nearPairs atomic.Int64

	particles atomic.Int64
	depth     atomic.Int64
	k         atomic.Int64

	// active is the currently open phase plus one (0 = no open span). The
	// solvers open at most one span at a time per Rec, so a plain store is
	// enough; it lets a recovery boundary name the phase that was running
	// when a panic unwound past its Span.End.
	active atomic.Int32
}

// Span is one open phase interval. It is a value type: Begin/End pairs
// allocate nothing, so they may bracket steady-state solver phases without
// disturbing a zero-allocation hot path.
type Span struct {
	r     *Rec
	p     Phase
	start time.Time
}

// Begin opens a timing span for phase p. On a nil Rec the returned Span is
// inert and End is free.
func (r *Rec) Begin(p Phase) Span {
	if r == nil {
		return Span{}
	}
	r.active.Store(int32(p) + 1)
	return Span{r: r, p: p, start: time.Now()}
}

// End closes the span, charging the elapsed wall time and one call to the
// span's phase.
func (s Span) End() {
	if s.r == nil {
		return
	}
	s.r.ns[s.p].Add(int64(time.Since(s.start)))
	s.r.calls[s.p].Add(1)
	s.r.active.CompareAndSwap(int32(s.p)+1, 0)
}

// ActivePhase returns the phase of the currently open span, if any. After a
// panic unwinds past a Span.End, the span stays active, so a recovery
// boundary can attribute the failure to the phase that was running.
func (r *Rec) ActivePhase() (Phase, bool) {
	if r == nil {
		return 0, false
	}
	a := r.active.Load()
	if a == 0 {
		return 0, false
	}
	return Phase(a - 1), true
}

// ClearActive closes the active-phase marker without charging time, used by
// recovery boundaries after reading ActivePhase so a stale marker does not
// leak into the next solve.
func (r *Rec) ClearActive() {
	if r == nil {
		return
	}
	r.active.Store(0)
}

// AddNs charges ns nanoseconds of wall time to phase p.
func (r *Rec) AddNs(p Phase, ns int64) {
	if r == nil {
		return
	}
	r.ns[p].Add(ns)
}

// AddFlops charges n floating-point operations to phase p.
func (r *Rec) AddFlops(p Phase, n int64) {
	if r == nil {
		return
	}
	r.flops[p].Add(n)
}

// AddBytes charges n moved bytes (memory or modeled network traffic) to
// phase p.
func (r *Rec) AddBytes(p Phase, n int64) {
	if r == nil {
		return
	}
	r.bytes[p].Add(n)
}

// AddCalls charges n invocations to phase p (for call sites not bracketed
// by a Span).
func (r *Rec) AddCalls(p Phase, n int64) {
	if r == nil {
		return
	}
	r.calls[p].Add(n)
}

// AddT2 counts n applied interactive-field (T2) translations.
func (r *Rec) AddT2(n int64) {
	if r == nil {
		return
	}
	r.t2Count.Add(n)
}

// AddNearPairs counts n evaluated particle-particle interactions.
func (r *Rec) AddNearPairs(n int64) {
	if r == nil {
		return
	}
	r.nearPairs.Add(n)
}

// SetShape records the problem shape the counters describe.
func (r *Rec) SetShape(particles, depth, k int) {
	if r == nil {
		return
	}
	r.particles.Store(int64(particles))
	r.depth.Store(int64(depth))
	r.k.Store(int64(k))
}

// Reset zeroes every counter (the shape included).
func (r *Rec) Reset() {
	if r == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		r.ns[p].Store(0)
		r.flops[p].Store(0)
		r.calls[p].Store(0)
		r.bytes[p].Store(0)
	}
	r.t2Count.Store(0)
	r.nearPairs.Store(0)
	r.particles.Store(0)
	r.depth.Store(0)
	r.k.Store(0)
	r.active.Store(0)
}

// ReadInto fills dst with a consistent-enough copy of the counters (each
// counter is read atomically; the set is not a single snapshot, which is
// fine between solves). Fields of dst the recorder does not own — Workers —
// are left untouched.
func (r *Rec) ReadInto(dst *Snapshot) {
	if r == nil {
		*dst = Snapshot{Workers: dst.Workers, Backend: simd.Active()}
		return
	}
	dst.Backend = simd.Active()
	for p := Phase(0); p < NumPhases; p++ {
		dst.Time[p] = time.Duration(r.ns[p].Load())
		dst.Flops[p] = r.flops[p].Load()
		dst.Calls[p] = r.calls[p].Load()
		dst.Bytes[p] = r.bytes[p].Load()
	}
	dst.T2Count = r.t2Count.Load()
	dst.NearPairs = r.nearPairs.Load()
	dst.Particles = int(r.particles.Load())
	dst.Depth = int(r.depth.Load())
	dst.K = int(r.k.Load())
}

// Snapshot returns a freshly allocated copy of the counters.
func (r *Rec) Snapshot() *Snapshot {
	s := &Snapshot{}
	r.ReadInto(s)
	return s
}
