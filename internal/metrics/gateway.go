package metrics

import "sync/atomic"

// GatewayStats is a snapshot of the replication tier's counters: replica
// ejections and recoveries from health checking, solve failovers and
// hedges from the retry layer, and stream resumes from the
// crash-survivable simulate path. Like OverloadStats, every field is zero
// on an unloaded process, so any nonzero value in a report is a fleet
// event worth reading.
type GatewayStats struct {
	Ejections     int64 `json:"ejections"`      // replicas marked down (probe or passive failure)
	Recoveries    int64 `json:"recoveries"`     // replicas marked healthy again
	Failovers     int64 `json:"failovers"`      // solve retried on another replica after a failure
	HedgesFired   int64 `json:"hedges_fired"`   // hedged duplicate requests launched
	HedgesWon     int64 `json:"hedges_won"`     // hedges that answered before the primary
	HedgesLost    int64 `json:"hedges_lost"`    // hedges the primary beat (duplicate discarded)
	StreamResumes int64 `json:"stream_resumes"` // simulate streams resumed on another replica
	StreamsLost   int64 `json:"streams_lost"`   // simulate streams abandoned (no checkpoint or no replica)
}

// Zero reports whether no gateway event has been recorded.
func (g GatewayStats) Zero() bool {
	return g == GatewayStats{}
}

// The gateway counters are package-level atomics for the same reason the
// overload counters are: the routing layer spans every replica and tenant,
// so its events belong to the process, not to any one backend's recorder.
var gateway struct {
	ejections     atomic.Int64
	recoveries    atomic.Int64
	failovers     atomic.Int64
	hedgesFired   atomic.Int64
	hedgesWon     atomic.Int64
	hedgesLost    atomic.Int64
	streamResumes atomic.Int64
	streamsLost   atomic.Int64
}

// AddEjections counts n replicas marked down.
func AddEjections(n int64) { gateway.ejections.Add(n) }

// AddRecoveries counts n replicas marked healthy again.
func AddRecoveries(n int64) { gateway.recoveries.Add(n) }

// AddFailovers counts n solves retried on another replica.
func AddFailovers(n int64) { gateway.failovers.Add(n) }

// AddHedgesFired counts n hedged duplicates launched.
func AddHedgesFired(n int64) { gateway.hedgesFired.Add(n) }

// AddHedgesWon counts n hedges that answered first.
func AddHedgesWon(n int64) { gateway.hedgesWon.Add(n) }

// AddHedgesLost counts n hedges the primary beat.
func AddHedgesLost(n int64) { gateway.hedgesLost.Add(n) }

// AddStreamResumes counts n simulate streams resumed on another replica.
func AddStreamResumes(n int64) { gateway.streamResumes.Add(n) }

// AddStreamsLost counts n simulate streams abandoned for good.
func AddStreamsLost(n int64) { gateway.streamsLost.Add(n) }

// ReadGateway returns the current gateway counters.
func ReadGateway() GatewayStats {
	return GatewayStats{
		Ejections:     gateway.ejections.Load(),
		Recoveries:    gateway.recoveries.Load(),
		Failovers:     gateway.failovers.Load(),
		HedgesFired:   gateway.hedgesFired.Load(),
		HedgesWon:     gateway.hedgesWon.Load(),
		HedgesLost:    gateway.hedgesLost.Load(),
		StreamResumes: gateway.streamResumes.Load(),
		StreamsLost:   gateway.streamsLost.Load(),
	}
}

// ResetGateway zeroes the gateway counters (tests and long-lived tools).
func ResetGateway() {
	gateway.ejections.Store(0)
	gateway.recoveries.Store(0)
	gateway.failovers.Store(0)
	gateway.hedgesFired.Store(0)
	gateway.hedgesWon.Store(0)
	gateway.hedgesLost.Store(0)
	gateway.streamResumes.Store(0)
	gateway.streamsLost.Store(0)
}
