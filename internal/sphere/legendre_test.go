package sphere

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLegendreLowDegrees(t *testing.T) {
	xs := []float64{-1, -0.7, -0.3, 0, 0.25, 0.5, 1}
	for _, x := range xs {
		cases := []struct {
			n    int
			want float64
		}{
			{0, 1},
			{1, x},
			{2, (3*x*x - 1) / 2},
			{3, (5*x*x*x - 3*x) / 2},
			{4, (35*x*x*x*x - 30*x*x + 3) / 8},
		}
		for _, c := range cases {
			if got := LegendreP(c.n, x); math.Abs(got-c.want) > 1e-14 {
				t.Errorf("P_%d(%g) = %g, want %g", c.n, x, got, c.want)
			}
		}
	}
}

func TestLegendreEndpointValues(t *testing.T) {
	for n := 0; n <= 20; n++ {
		if got := LegendreP(n, 1); math.Abs(got-1) > 1e-13 {
			t.Errorf("P_%d(1) = %g, want 1", n, got)
		}
		want := 1.0
		if n%2 == 1 {
			want = -1
		}
		if got := LegendreP(n, -1); math.Abs(got-want) > 1e-13 {
			t.Errorf("P_%d(-1) = %g, want %g", n, got, want)
		}
	}
}

func TestLegendreBoundedOnInterval(t *testing.T) {
	f := func(xi int16, n uint8) bool {
		x := float64(xi) / 32768
		deg := int(n % 30)
		return math.Abs(LegendreP(deg, x)) <= 1+1e-12
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLegendreAllMatchesScalar(t *testing.T) {
	out := make([]float64, 16)
	for _, x := range []float64{-0.9, -0.1, 0, 0.3, 0.99} {
		LegendreAll(x, out)
		for n := range out {
			if got, want := out[n], LegendreP(n, x); math.Abs(got-want) > 1e-14 {
				t.Errorf("LegendreAll[%d](%g) = %g, want %g", n, x, got, want)
			}
		}
	}
}

func TestLegendreAllEdgeLengths(t *testing.T) {
	LegendreAll(0.5, nil) // must not panic
	one := []float64{0}
	LegendreAll(0.5, one)
	if one[0] != 1 {
		t.Errorf("LegendreAll len-1 = %v", one[0])
	}
}

func TestLegendreDerivative(t *testing.T) {
	// Compare against central differences away from endpoints.
	h := 1e-6
	for n := 1; n <= 12; n++ {
		for _, x := range []float64{-0.8, -0.2, 0.1, 0.6, 0.95} {
			_, dp := LegendrePDeriv(n, x)
			fd := (LegendreP(n, x+h) - LegendreP(n, x-h)) / (2 * h)
			if math.Abs(dp-fd) > 1e-6*(1+math.Abs(fd)) {
				t.Errorf("P'_%d(%g) = %g, FD %g", n, x, dp, fd)
			}
		}
	}
}

func TestLegendreDerivativeEndpoints(t *testing.T) {
	for n := 1; n <= 10; n++ {
		want := float64(n) * float64(n+1) / 2
		if _, dp := LegendrePDeriv(n, 1); math.Abs(dp-want) > 1e-12 {
			t.Errorf("P'_%d(1) = %g, want %g", n, dp, want)
		}
		wantNeg := want
		if n%2 == 0 {
			wantNeg = -want
		}
		if _, dp := LegendrePDeriv(n, -1); math.Abs(dp-wantNeg) > 1e-12 {
			t.Errorf("P'_%d(-1) = %g, want %g", n, dp, wantNeg)
		}
	}
}

func TestLegendreAllDerivMatchesScalar(t *testing.T) {
	p := make([]float64, 10)
	dp := make([]float64, 10)
	for _, x := range []float64{-1, -0.5, 0, 0.7, 1} {
		LegendreAllDeriv(x, p, dp)
		for n := range p {
			wp, wdp := LegendrePDeriv(n, x)
			if math.Abs(p[n]-wp) > 1e-13 || math.Abs(dp[n]-wdp) > 1e-10*(1+math.Abs(wdp)) {
				t.Errorf("AllDeriv[%d](%g) = (%g,%g), want (%g,%g)", n, x, p[n], dp[n], wp, wdp)
			}
		}
	}
}

func TestGaussLegendreSmall(t *testing.T) {
	// n=2: nodes ±1/sqrt(3), weights 1.
	nodes, w := GaussLegendre(2)
	if math.Abs(math.Abs(nodes[0])-1/math.Sqrt(3)) > 1e-14 {
		t.Errorf("n=2 nodes = %v", nodes)
	}
	if math.Abs(w[0]-1) > 1e-14 || math.Abs(w[1]-1) > 1e-14 {
		t.Errorf("n=2 weights = %v", w)
	}
	// n=3: nodes ±sqrt(3/5), 0; weights 5/9, 8/9.
	nodes, w = GaussLegendre(3)
	if nodes[1] != 0 {
		t.Errorf("n=3 middle node = %v, want exactly 0", nodes[1])
	}
	if math.Abs(w[1]-8.0/9) > 1e-14 {
		t.Errorf("n=3 middle weight = %v", w[1])
	}
}

func TestGaussLegendreExactness(t *testing.T) {
	// The n-point rule integrates x^k exactly for k <= 2n-1.
	for n := 1; n <= 12; n++ {
		nodes, w := GaussLegendre(n)
		for k := 0; k <= 2*n-1; k++ {
			var got float64
			for i := range nodes {
				got += w[i] * math.Pow(nodes[i], float64(k))
			}
			want := 0.0
			if k%2 == 0 {
				want = 2 / float64(k+1)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("n=%d: integral x^%d = %g, want %g", n, k, got, want)
			}
		}
	}
}

func TestGaussLegendreWeightsPositiveAndSum(t *testing.T) {
	for n := 1; n <= 32; n++ {
		nodes, w := GaussLegendre(n)
		var sum float64
		for i := range w {
			if w[i] <= 0 {
				t.Fatalf("n=%d: nonpositive weight %g", n, w[i])
			}
			sum += w[i]
			if math.Abs(nodes[i]) >= 1 {
				t.Fatalf("n=%d: node %g outside (-1,1)", n, nodes[i])
			}
		}
		if math.Abs(sum-2) > 1e-12 {
			t.Errorf("n=%d: weight sum = %g, want 2", n, sum)
		}
	}
}

func TestGaussLegendreBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GaussLegendre(0) should panic")
		}
	}()
	GaussLegendre(0)
}
