package sphere

import (
	"math"
	"testing"

	"nbody/internal/geom"
)

// sphereMonomialMean returns the exact mean of x^a y^b z^c over the unit
// sphere: 0 if any exponent is odd, else (a-1)!!(b-1)!!(c-1)!!/(a+b+c+1)!!.
func sphereMonomialMean(a, b, c int) float64 {
	if a%2 == 1 || b%2 == 1 || c%2 == 1 {
		return 0
	}
	return ddfact(a-1) * ddfact(b-1) * ddfact(c-1) / ddfact(a+b+c+1)
}

func ddfact(n int) float64 {
	f := 1.0
	for k := n; k > 1; k -= 2 {
		f *= float64(k)
	}
	return f
}

func checkRuleExactness(t *testing.T, r *Rule) {
	t.Helper()
	for a := 0; a <= r.Degree; a++ {
		for b := 0; a+b <= r.Degree; b++ {
			for c := 0; a+b+c <= r.Degree; c++ {
				got := r.Mean(func(p geom.Vec3) float64 {
					return math.Pow(p.X, float64(a)) * math.Pow(p.Y, float64(b)) * math.Pow(p.Z, float64(c))
				})
				want := sphereMonomialMean(a, b, c)
				if math.Abs(got-want) > 1e-12 {
					t.Errorf("%v: mean x^%d y^%d z^%d = %g, want %g", r, a, b, c, got, want)
				}
			}
		}
	}
}

func checkRuleBasics(t *testing.T, r *Rule) {
	t.Helper()
	var sum float64
	for i, p := range r.Points {
		if math.Abs(p.Norm()-1) > 1e-13 {
			t.Errorf("%v: point %d not on unit sphere (|p| = %g)", r, i, p.Norm())
		}
		if r.W[i] <= 0 {
			t.Errorf("%v: weight %d nonpositive", r, i)
		}
		sum += r.W[i]
	}
	if math.Abs(sum-1) > 1e-13 {
		t.Errorf("%v: weights sum to %g, want 1", r, sum)
	}
}

func TestDesigns(t *testing.T) {
	for _, r := range []*Rule{Tetrahedron(), Octahedron(), Icosahedron()} {
		checkRuleBasics(t, r)
		checkRuleExactness(t, r)
	}
}

func TestIcosahedronHasTwelvePoints(t *testing.T) {
	r := Icosahedron()
	if r.K() != 12 || r.Degree != 5 {
		t.Errorf("icosahedron K=%d degree=%d, want 12, 5", r.K(), r.Degree)
	}
	// All pairwise dot products of distinct vertices are ±1/sqrt(5) or -1.
	for i := range r.Points {
		for j := i + 1; j < len(r.Points); j++ {
			d := r.Points[i].Dot(r.Points[j])
			ok := math.Abs(math.Abs(d)-1/math.Sqrt(5)) < 1e-12 || math.Abs(d+1) < 1e-12
			if !ok {
				t.Errorf("vertices %d,%d dot = %g", i, j, d)
			}
		}
	}
}

func TestProductRules(t *testing.T) {
	for _, cfg := range []struct{ nt, np int }{{2, 4}, {3, 6}, {4, 8}, {6, 12}, {8, 15}} {
		r := Product(cfg.nt, cfg.np)
		checkRuleBasics(t, r)
		checkRuleExactness(t, r)
		if r.K() != cfg.nt*cfg.np {
			t.Errorf("%v: K = %d, want %d", r, r.K(), cfg.nt*cfg.np)
		}
	}
}

func TestForDegree(t *testing.T) {
	cases := []struct {
		d        int
		wantK    int
		wantName string
	}{
		{1, 4, "tetrahedron"},
		{2, 4, "tetrahedron"},
		{3, 6, "octahedron"},
		{5, 12, "icosahedron"},
		{7, 4 * 8, "product4x8"},
		{11, 6 * 12, "product6x12"},
		{14, 8 * 15, "product8x15"},
	}
	for _, c := range cases {
		r := ForDegree(c.d)
		if r.Degree < c.d {
			t.Errorf("ForDegree(%d) degree = %d", c.d, r.Degree)
		}
		if r.K() != c.wantK || r.Name != c.wantName {
			t.Errorf("ForDegree(%d) = %v, want %s K=%d", c.d, r, c.wantName, c.wantK)
		}
		checkRuleExactness(t, r)
	}
}

func TestDefaultM(t *testing.T) {
	if got := Icosahedron().DefaultM(); got != 2 {
		t.Errorf("icosahedron DefaultM = %d, want 2", got)
	}
	if got := Product(8, 15).DefaultM(); got != 7 {
		t.Errorf("product8x15 DefaultM = %d, want 7", got)
	}
	if got := Tetrahedron().DefaultM(); got != 1 {
		t.Errorf("tetrahedron DefaultM = %d, want 1", got)
	}
}

func TestRuleMeanConstant(t *testing.T) {
	for d := 1; d <= 16; d++ {
		r := ForDegree(d)
		if got := r.Mean(func(geom.Vec3) float64 { return 3.5 }); math.Abs(got-3.5) > 1e-12 {
			t.Errorf("%v: mean of constant = %g", r, got)
		}
	}
}

func TestProductBadInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Product(0, 5) should panic")
		}
	}()
	Product(0, 5)
}
