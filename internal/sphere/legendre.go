// Package sphere provides the quadrature machinery of Anderson's method:
// Legendre polynomials, Gauss-Legendre nodes and weights, integration rules
// on the unit sphere S^2 (spherical t-designs for small point counts and
// product Gauss-Legendre x trapezoidal rules for arbitrary order), and
// equally spaced rules on the unit circle for the 2-D variant.
//
// Anderson's outer/inner sphere approximations (Anderson, SIAM J. Sci.
// Comput. 1992; Hu & Johnsson SC'96 Section 2.4) represent a harmonic
// potential by its values at the K integration points of such a rule and
// evaluate it elsewhere through a discretized Poisson integral whose kernel
// is a truncated Legendre series. The accuracy of the method is set by the
// polynomial degree D the rule integrates exactly (the "integration order"
// of the paper's Table 2).
package sphere

import "math"

// LegendreP returns P_n(x), the Legendre polynomial of degree n, via the
// standard three-term recurrence. The recurrence is numerically stable for
// |x| <= 1, the only range Anderson's kernels use (x is a dot product of
// unit vectors).
func LegendreP(n int, x float64) float64 {
	if n == 0 {
		return 1
	}
	if n == 1 {
		return x
	}
	pm1, p := 1.0, x
	for k := 2; k <= n; k++ {
		pm1, p = p, (float64(2*k-1)*x*p-float64(k-1)*pm1)/float64(k)
	}
	return p
}

// LegendreAll fills out[0..M] with P_0(x)..P_M(x); out must have length M+1.
// It is the inner-loop primitive of translation-matrix construction, where
// all degrees up to the truncation M are needed at once.
func LegendreAll(x float64, out []float64) {
	m := len(out) - 1
	if m < 0 {
		return
	}
	out[0] = 1
	if m == 0 {
		return
	}
	out[1] = x
	for k := 2; k <= m; k++ {
		out[k] = (float64(2*k-1)*x*out[k-1] - float64(k-1)*out[k-2]) / float64(k)
	}
}

// LegendrePDeriv returns P_n(x) and its derivative P_n'(x). The derivative
// is needed for force (gradient) evaluation of inner approximations. At the
// endpoints x = ±1 the analytic limit P_n'(±1) = (±1)^(n+1) n(n+1)/2 is
// used, since the usual relation divides by 1-x^2.
func LegendrePDeriv(n int, x float64) (p, dp float64) {
	p = LegendreP(n, x)
	if n == 0 {
		return p, 0
	}
	if x == 1 || x == -1 {
		s := 1.0
		if x < 0 && n%2 == 0 {
			s = -1
		}
		return p, s * float64(n) * float64(n+1) / 2
	}
	pm1 := LegendreP(n-1, x)
	dp = float64(n) * (x*p - pm1) / (x*x - 1)
	return p, dp
}

// LegendreAllDeriv fills p[0..M] and dp[0..M] with the Legendre polynomials
// and their derivatives at x. len(p) must equal len(dp).
func LegendreAllDeriv(x float64, p, dp []float64) {
	LegendreAll(x, p)
	m := len(p) - 1
	if m < 0 {
		return
	}
	dp[0] = 0
	if m == 0 {
		return
	}
	if x == 1 || x == -1 {
		for n := 1; n <= m; n++ {
			s := 1.0
			if x < 0 && n%2 == 0 {
				s = -1
			}
			dp[n] = s * float64(n) * float64(n+1) / 2
		}
		return
	}
	for n := 1; n <= m; n++ {
		dp[n] = float64(n) * (x*p[n] - p[n-1]) / (x*x - 1)
	}
}

// GaussLegendre returns the n nodes and weights of the Gauss-Legendre
// quadrature rule on [-1, 1], exact for polynomials of degree <= 2n-1.
// Nodes are the roots of P_n, found by Newton iteration from the Chebyshev
// initial guess; weights are 2 / ((1-x^2) P_n'(x)^2).
func GaussLegendre(n int) (nodes, weights []float64) {
	if n < 1 {
		panic("sphere: GaussLegendre needs n >= 1")
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	for i := 0; i < (n+1)/2; i++ {
		// Initial guess (Abramowitz & Stegun 22.16.6 flavor).
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var dp float64
		for iter := 0; iter < 100; iter++ {
			var p float64
			p, dp = LegendrePDeriv(n, x)
			dx := p / dp
			x -= dx
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		_, dp = LegendrePDeriv(n, x)
		w := 2 / ((1 - x*x) * dp * dp)
		nodes[i] = x
		weights[i] = w
		nodes[n-1-i] = -x
		weights[n-1-i] = w
	}
	if n%2 == 1 {
		// Force the middle node to exactly zero (it is, analytically).
		nodes[n/2] = 0
		_, dp := LegendrePDeriv(n, 0)
		weights[n/2] = 2 / (dp * dp)
	}
	return nodes, weights
}
