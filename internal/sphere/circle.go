package sphere

import (
	"fmt"
	"math"

	"nbody/internal/geom"
)

// CircleRule is an integration rule on the unit circle S^1 for the 2-D
// variant of Anderson's method. K equally spaced points with equal weights
// integrate trigonometric polynomials of degree <= K-1 exactly (and all even
// symmetries beyond), which is spectrally accurate for the smooth boundary
// potentials the method integrates.
type CircleRule struct {
	Points []geom.Vec2 // unit vectors s_i
	Angles []float64   // their angles theta_i
	W      []float64   // weights, summing to 1 (all equal to 1/K)
	Degree int         // largest trig-polynomial degree integrated exactly
}

// Circle returns the K-point equally spaced rule.
func Circle(k int) *CircleRule {
	if k < 1 {
		panic("sphere: Circle needs k >= 1")
	}
	r := &CircleRule{
		Points: make([]geom.Vec2, k),
		Angles: make([]float64, k),
		W:      make([]float64, k),
		Degree: k - 1,
	}
	for i := 0; i < k; i++ {
		th := 2 * math.Pi * float64(i) / float64(k)
		r.Angles[i] = th
		r.Points[i] = geom.Vec2{X: math.Cos(th), Y: math.Sin(th)}
		r.W[i] = 1 / float64(k)
	}
	return r
}

// K returns the number of integration points.
func (r *CircleRule) K() int { return len(r.Points) }

// DefaultM returns the default Fourier truncation for kernels built on this
// rule: modes above K/2 alias on a K-point grid, so M = (K-1)/2 is the
// largest safe truncation.
func (r *CircleRule) DefaultM() int {
	m := (r.K() - 1) / 2
	if m < 1 {
		m = 1
	}
	return m
}

// Mean integrates f over the circle with respect to the normalized measure.
func (r *CircleRule) Mean(f func(geom.Vec2) float64) float64 {
	var s float64
	for i, p := range r.Points {
		s += r.W[i] * f(p)
	}
	return s
}

// String implements fmt.Stringer.
func (r *CircleRule) String() string { return fmt.Sprintf("circle(K=%d)", r.K()) }
