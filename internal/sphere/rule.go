package sphere

import (
	"fmt"
	"math"

	"nbody/internal/geom"
)

// Rule is an integration rule on the unit sphere S^2. Weights are
// normalized so that Sum(W) = 1; a rule therefore computes the *mean* of a
// function over the sphere, matching the 1/(4*pi) factor of Poisson's
// formula (equations (1)-(3) of the paper).
//
// Degree is the largest polynomial degree the rule integrates exactly: the
// paper's "order of integration D" (Table 2). M is the associated Legendre
// series truncation used by Anderson's kernels, M = Degree/2 by default.
type Rule struct {
	Name   string
	Points []geom.Vec3 // unit vectors s_i
	W      []float64   // weights, summing to 1
	Degree int
}

// K returns the number of integration points.
func (r *Rule) K() int { return len(r.Points) }

// DefaultM returns the default Legendre truncation for kernels built on this
// rule. The discretized Poisson kernel can resolve spherical harmonics only
// up to the rule's exactness; Anderson's parameter table uses M = D/2.
func (r *Rule) DefaultM() int {
	m := r.Degree / 2
	if m < 1 {
		m = 1
	}
	return m
}

// Mean integrates f over the sphere with respect to the normalized measure.
func (r *Rule) Mean(f func(geom.Vec3) float64) float64 {
	var s float64
	for i, p := range r.Points {
		s += r.W[i] * f(p)
	}
	return s
}

// String implements fmt.Stringer.
func (r *Rule) String() string {
	return fmt.Sprintf("%s(K=%d, degree %d)", r.Name, r.K(), r.Degree)
}

// Tetrahedron returns the 4-point spherical 2-design: the vertices of a
// regular tetrahedron, equal weights.
func Tetrahedron() *Rule {
	c := 1 / math.Sqrt(3)
	pts := []geom.Vec3{
		{X: c, Y: c, Z: c},
		{X: c, Y: -c, Z: -c},
		{X: -c, Y: c, Z: -c},
		{X: -c, Y: -c, Z: c},
	}
	return equalWeight("tetrahedron", pts, 2)
}

// Octahedron returns the 6-point spherical 3-design: the vertices of a
// regular octahedron, equal weights.
func Octahedron() *Rule {
	pts := []geom.Vec3{
		{X: 1}, {X: -1}, {Y: 1}, {Y: -1}, {Z: 1}, {Z: -1},
	}
	return equalWeight("octahedron", pts, 3)
}

// Icosahedron returns the 12-point spherical 5-design: the vertices of a
// regular icosahedron, equal weights. This is Anderson's K=12, D=5
// configuration (the paper's headline low-accuracy runs).
func Icosahedron() *Rule {
	phi := (1 + math.Sqrt(5)) / 2
	n := math.Sqrt(1 + phi*phi)
	a, b := 1/n, phi/n
	pts := []geom.Vec3{
		{X: 0, Y: a, Z: b}, {X: 0, Y: a, Z: -b}, {X: 0, Y: -a, Z: b}, {X: 0, Y: -a, Z: -b},
		{X: a, Y: b, Z: 0}, {X: a, Y: -b, Z: 0}, {X: -a, Y: b, Z: 0}, {X: -a, Y: -b, Z: 0},
		{X: b, Y: 0, Z: a}, {X: -b, Y: 0, Z: a}, {X: b, Y: 0, Z: -a}, {X: -b, Y: 0, Z: -a},
	}
	return equalWeight("icosahedron", pts, 5)
}

func equalWeight(name string, pts []geom.Vec3, degree int) *Rule {
	w := make([]float64, len(pts))
	for i := range w {
		w[i] = 1 / float64(len(pts))
	}
	return &Rule{Name: name, Points: pts, W: w, Degree: degree}
}

// Product returns the product Gauss-Legendre x trapezoidal rule with ntheta
// Gauss nodes in cos(theta) and nphi equally spaced azimuthal nodes,
// K = ntheta*nphi points. It integrates spherical polynomials exactly up to
// degree min(2*ntheta-1, nphi-1).
//
// This is the substitute for the McLaren-style minimal formulas Anderson
// selected from (see DESIGN.md): any integration order is reachable, at the
// cost of ~1.7x more points than the minimal rule of the same degree.
func Product(ntheta, nphi int) *Rule {
	if ntheta < 1 || nphi < 1 {
		panic("sphere: Product needs positive point counts")
	}
	nodes, wts := GaussLegendre(ntheta)
	pts := make([]geom.Vec3, 0, ntheta*nphi)
	w := make([]float64, 0, ntheta*nphi)
	for i := 0; i < ntheta; i++ {
		ct := nodes[i]
		st := math.Sqrt(1 - ct*ct)
		for j := 0; j < nphi; j++ {
			// Offset the azimuthal grid by half a step per ring to avoid
			// aligned meridians (slightly better conditioning, no effect on
			// exactness).
			phi := 2 * math.Pi * (float64(j) + 0.5*float64(i%2)) / float64(nphi)
			pts = append(pts, geom.Vec3{X: st * math.Cos(phi), Y: st * math.Sin(phi), Z: ct})
			w = append(w, wts[i]/2/float64(nphi))
		}
	}
	deg := 2*ntheta - 1
	if nphi-1 < deg {
		deg = nphi - 1
	}
	return &Rule{
		Name:   fmt.Sprintf("product%dx%d", ntheta, nphi),
		Points: pts,
		W:      w,
		Degree: deg,
	}
}

// ForDegree returns a rule of exactness at least d, choosing the exact
// design when one is available at fewer points and the product rule
// otherwise. This mirrors Anderson's guidance to pick the formula with the
// fewest points for the chosen integration order.
func ForDegree(d int) *Rule {
	switch {
	case d <= 2:
		return Tetrahedron()
	case d <= 3:
		return Octahedron()
	case d <= 5:
		return Icosahedron()
	default:
		nt := (d + 2) / 2 // ceil((d+1)/2)
		return Product(nt, d+1)
	}
}
