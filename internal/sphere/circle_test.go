package sphere

import (
	"math"
	"testing"

	"nbody/internal/geom"
)

func TestCircleBasics(t *testing.T) {
	r := Circle(8)
	if r.K() != 8 || r.Degree != 7 {
		t.Fatalf("K=%d degree=%d", r.K(), r.Degree)
	}
	var sum float64
	for i, p := range r.Points {
		if math.Abs(p.Norm()-1) > 1e-14 {
			t.Errorf("point %d off circle", i)
		}
		if math.Abs(p.X-math.Cos(r.Angles[i])) > 1e-14 {
			t.Errorf("point %d inconsistent with angle", i)
		}
		sum += r.W[i]
	}
	if math.Abs(sum-1) > 1e-14 {
		t.Errorf("weights sum to %g", sum)
	}
}

func TestCircleTrigExactness(t *testing.T) {
	// K equally spaced points integrate cos(n t) and sin(n t) exactly
	// (to zero) for 1 <= n <= K-1, and the constant to 1.
	for _, k := range []int{4, 7, 12, 16} {
		r := Circle(k)
		for n := 1; n < k; n++ {
			c := r.Mean(func(p geom.Vec2) float64 { return math.Cos(float64(n) * p.Angle()) })
			s := r.Mean(func(p geom.Vec2) float64 { return math.Sin(float64(n) * p.Angle()) })
			if math.Abs(c) > 1e-13 || math.Abs(s) > 1e-13 {
				t.Errorf("K=%d: mean cos/sin(%d t) = %g, %g", k, n, c, s)
			}
		}
		if got := r.Mean(func(geom.Vec2) float64 { return 2 }); math.Abs(got-2) > 1e-14 {
			t.Errorf("K=%d: mean const = %g", k, got)
		}
	}
}

func TestCircleAliasing(t *testing.T) {
	// cos(K t) aliases to the constant 1 on a K-point grid: this is why
	// DefaultM caps the Fourier truncation below K/2.
	k := 8
	r := Circle(k)
	got := r.Mean(func(p geom.Vec2) float64 { return math.Cos(float64(k) * p.Angle()) })
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("mean cos(K t) = %g, want 1 (aliased)", got)
	}
}

func TestCircleDefaultM(t *testing.T) {
	if got := Circle(12).DefaultM(); got != 5 {
		t.Errorf("DefaultM(12 pts) = %d, want 5", got)
	}
	if got := Circle(3).DefaultM(); got != 1 {
		t.Errorf("DefaultM(3 pts) = %d, want 1", got)
	}
}

func TestCircleBadInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Circle(0) should panic")
		}
	}()
	Circle(0)
}

func TestCircleString(t *testing.T) {
	if got := Circle(4).String(); got != "circle(K=4)" {
		t.Errorf("String = %q", got)
	}
}
