package simd

// CPUID feature probe for the AVX2 backend. The repository vendors nothing,
// so instead of golang.org/x/sys/cpu this is the same three-leaf probe that
// package does: leaf 1 for FMA/AVX/OSXSAVE, XGETBV for OS-enabled YMM
// state, leaf 7 for AVX2. All four conditions must hold — FMA and AVX2 are
// separate CPUID bits, and without OSXSAVE+XCR0 the OS does not preserve
// the upper YMM halves across context switches.

// cpuid executes the CPUID instruction (implemented in cpu_amd64.s).
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (implemented in cpu_amd64.s).
func xgetbv() (eax, edx uint32)

var hasAVX2FMA = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	// XCR0 bits 1 (SSE state) and 2 (AVX state) must both be OS-enabled.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
