package simd

import (
	"slices"
	"strings"
	"testing"
)

func restoreBackend(t *testing.T) {
	t.Helper()
	prev := Active()
	t.Cleanup(func() {
		if err := SetBackend(prev); err != nil {
			t.Fatalf("restoring backend %q: %v", prev, err)
		}
	})
}

func TestSupportedAndActive(t *testing.T) {
	sup := Supported()
	if len(sup) == 0 || sup[0] != Scalar {
		t.Fatalf("Supported() = %v, want scalar first", sup)
	}
	if !slices.Contains(sup, Active()) {
		t.Errorf("active backend %q not in supported set %v", Active(), sup)
	}
}

func TestSetBackendResolvesAuto(t *testing.T) {
	restoreBackend(t)
	if err := SetBackend(Auto); err != nil {
		t.Fatal(err)
	}
	// Auto must resolve to the fastest supported backend, never stay "auto".
	sup := Supported()
	if got, want := Active(), sup[len(sup)-1]; got != want {
		t.Errorf("SetBackend(auto) resolved to %q, want %q", got, want)
	}
}

func TestSetBackendRejectsUnknown(t *testing.T) {
	restoreBackend(t)
	before := Active()
	err := SetBackend("neon")
	if err == nil {
		t.Fatal("SetBackend accepted an unknown backend")
	}
	if !strings.Contains(err.Error(), Help()) {
		t.Errorf("error %q does not enumerate valid names %q", err, Help())
	}
	if Active() != before {
		t.Errorf("failed SetBackend changed the active backend to %q", Active())
	}
}

func TestSetBackendRejectsUnsupported(t *testing.T) {
	restoreBackend(t)
	// Every backend in the table that the probe rules out must fail loudly;
	// every supported one must activate.
	for _, b := range backends {
		err := SetBackend(b.name)
		if b.supported() {
			if err != nil {
				t.Errorf("SetBackend(%q): %v with probe passing", b.name, err)
			} else if Active() != b.name {
				t.Errorf("SetBackend(%q) activated %q", b.name, Active())
			}
			continue
		}
		if err == nil {
			t.Errorf("SetBackend(%q) succeeded with probe failing", b.name)
		}
	}
}

func TestRegisterAppliesImmediatelyAndOnSwitch(t *testing.T) {
	restoreBackend(t)
	var got []string
	Register(func(name string) { got = append(got, name) })
	if len(got) != 1 || got[0] != Active() {
		t.Fatalf("Register applied %v, want immediate [%q]", got, Active())
	}
	if err := SetBackend(Scalar); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != Scalar {
		t.Fatalf("after SetBackend(scalar) applier saw %v", got)
	}
}
