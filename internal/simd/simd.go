// Package simd owns the runtime selection of the vectorized compute
// backend shared by internal/blas and internal/kernels. It probes the CPU
// once at startup (CPUID on amd64; nothing elsewhere), resolves the initial
// backend from the NBODY_BACKEND environment knob, and re-applies the
// choice to every registered kernel package when SetBackend switches it.
//
// The package sits at the bottom of the import graph (no dependencies), so
// blas, kernels, metrics, and cli can all consult it without cycles.
//
// Backend contract: results are bitwise reproducible *within* a backend —
// each backend pins its reduction order and repeated solves on reused state
// produce identical bits — while results *across* backends differ by
// summation-order rounding only, bounded by the differential test suite.
// SetBackend must not race with a running solve: switch backends between
// solves (commands do it before building a solver; tests do it
// sequentially).
package simd

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Backend names. Auto is a request, not a backend: it resolves to the last
// supported entry of the table below.
const (
	Scalar = "scalar"
	AVX2   = "avx2"
	Auto   = "auto"
)

// backends is the validation and capability table, ordered portable →
// fastest; Auto resolves to the last row whose probe passes. Adding a
// backend means adding a row here, an applier case in each kernel package,
// and the probe in cpu_GOARCH.go (see DESIGN.md §11).
var backends = []struct {
	name      string
	supported func() bool
}{
	{Scalar, func() bool { return true }},
	{AVX2, func() bool { return hasAVX2FMA }},
}

var (
	mu       sync.Mutex
	current  atomic.Value // string; the active backend name
	appliers []func(name string)
)

func init() {
	name := os.Getenv("NBODY_BACKEND")
	if name == "" {
		name = Auto
	}
	resolved, err := resolve(name)
	if err != nil {
		// A bad env value must not make every binary unusable; warn and
		// fall back to auto-detection.
		fmt.Fprintf(os.Stderr, "simd: ignoring NBODY_BACKEND: %v\n", err)
		resolved, _ = resolve(Auto)
	}
	current.Store(resolved)
}

// resolve validates a backend request against the table and returns the
// concrete backend name it denotes.
func resolve(name string) (string, error) {
	if name == Auto {
		best := Scalar
		for _, b := range backends {
			if b.supported() {
				best = b.name
			}
		}
		return best, nil
	}
	for _, b := range backends {
		if b.name != name {
			continue
		}
		if !b.supported() {
			return "", fmt.Errorf("backend %q is not supported on this CPU (supported: %v)", name, Supported())
		}
		return name, nil
	}
	return "", fmt.Errorf("unknown backend %q (valid: %s)", name, Help())
}

// Active returns the name of the backend currently applied to the kernel
// packages.
func Active() string { return current.Load().(string) }

// Supported returns the backends this process can run, portable first.
func Supported() []string {
	var s []string
	for _, b := range backends {
		if b.supported() {
			s = append(s, b.name)
		}
	}
	return s
}

// Help returns the flag-help enumeration of accepted names, Auto included.
func Help() string {
	h := Auto
	for _, b := range backends {
		h += "|" + b.name
	}
	return h
}

// Register adds a kernel package's backend applier and immediately invokes
// it with the active backend, so package init order does not matter. The
// applier must tolerate being called again on every later SetBackend.
func Register(apply func(name string)) {
	mu.Lock()
	defer mu.Unlock()
	apply(Active())
	appliers = append(appliers, apply)
}

// SetBackend validates name ("auto" resolves to the fastest supported
// backend) and re-applies the choice to every registered kernel package.
// It must not be called concurrently with a running solve.
func SetBackend(name string) error {
	mu.Lock()
	defer mu.Unlock()
	resolved, err := resolve(name)
	if err != nil {
		return err
	}
	current.Store(resolved)
	for _, f := range appliers {
		f(resolved)
	}
	return nil
}
