//go:build !amd64

package simd

// Non-amd64 builds have no vector backend yet (NEON is the documented next
// step, DESIGN.md §11); the scalar stream is the only entry in the table.
var hasAVX2FMA = false
