package nbody

import (
	"math"
	"testing"

	"nbody/internal/dpfmm"
)

func relErr(got, want []float64) float64 {
	var rms, mean float64
	for i := range got {
		d := got[i] - want[i]
		rms += d * d
		mean += math.Abs(want[i])
	}
	return math.Sqrt(rms/float64(len(got))) / (mean/float64(len(got)) + 1e-300)
}

func TestSystemGenerators(t *testing.T) {
	u := NewUniformSystem(1000, 1)
	if u.Len() != 1000 {
		t.Fatalf("Len = %d", u.Len())
	}
	bb := u.BoundingBox()
	for _, p := range u.Positions {
		if !bb.Contains(p) && p.Dist(bb.Center) > bb.Side {
			t.Fatalf("particle %v outside bounding box %v", p, bb)
		}
	}
	if u.TotalCharge() <= 0 {
		t.Error("uniform system should have positive total charge")
	}

	p := NewPlummerSystem(2000, 2)
	if math.Abs(p.TotalCharge()-1) > 1e-12 {
		t.Errorf("Plummer total mass = %g, want 1", p.TotalCharge())
	}
	// Mass concentrates near the center: one Plummer scale length maps to
	// 1/16 of the box and should hold ~35% of the mass (analytically
	// (1+1)^(-3/2) complementary ~ 0.35).
	c := Vec3{X: 0.5, Y: 0.5, Z: 0.5}
	inner := 0
	for _, q := range p.Positions {
		if q.Dist(c) < 0.0625 {
			inner++
		}
	}
	frac := float64(inner) / float64(p.Len())
	if frac < 0.25 || frac > 0.45 {
		t.Errorf("Plummer concentration: %.2f within one scale length, want ~0.35", frac)
	}

	nsys := NewNeutralSystem(100, 3)
	if nsys.TotalCharge() != 0 {
		t.Errorf("neutral system charge = %g", nsys.TotalCharge())
	}
}

func TestBoundingBoxDegenerate(t *testing.T) {
	s := &System{Positions: []Vec3{{X: 1, Y: 2, Z: 3}}, Charges: []float64{1}}
	bb := s.BoundingBox()
	if bb.Side <= 0 {
		t.Errorf("degenerate bounding box: %v", bb)
	}
	empty := &System{}
	if empty.BoundingBox().Side <= 0 {
		t.Error("empty bounding box side <= 0")
	}
}

func TestAndersonAgainstDirect(t *testing.T) {
	sys := NewUniformSystem(2000, 4)
	a, err := NewAnderson(sys.BoundingBox(), Options{Accuracy: Balanced})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := a.Potentials(sys)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewDirect().Potentials(sys)
	if e := relErr(phi, want); e > 1e-4 {
		t.Errorf("Balanced error %.2e", e)
	}
	if a.Depth() < 2 {
		t.Errorf("auto depth = %d", a.Depth())
	}
	if a.Stats().TotalFlops() <= 0 {
		t.Error("no stats recorded")
	}
}

func TestAccuracyPresetsOrdering(t *testing.T) {
	sys := NewUniformSystem(1500, 5)
	want, _ := NewDirect().Potentials(sys)
	var errs []float64
	for _, acc := range []Accuracy{Fast, Balanced, Accurate} {
		a, err := NewAnderson(sys.BoundingBox(), Options{Accuracy: acc, Depth: 3})
		if err != nil {
			t.Fatal(err)
		}
		phi, err := a.Potentials(sys)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, relErr(phi, want))
	}
	t.Logf("preset errors: %v", errs)
	if !(errs[0] > errs[1] && errs[1] > errs[2]) {
		t.Errorf("presets not ordered: %v", errs)
	}
	// The paper's headline accuracies: ~4 digits Fast, ~6+ digits Accurate
	// (relative to the mean).
	if errs[0] > 1e-3 {
		t.Errorf("Fast error %.2e, want ~1e-4 band", errs[0])
	}
	if errs[2] > 1e-5 {
		t.Errorf("Accurate error %.2e, want ~1e-6 band", errs[2])
	}
}

func TestBarnesHutSolver(t *testing.T) {
	sys := NewUniformSystem(2000, 6)
	b := NewBarnesHut(sys.BoundingBox(), 0.5)
	phi, err := b.Potentials(sys)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewDirect().Potentials(sys)
	if e := relErr(phi, want); e > 5e-3 {
		t.Errorf("BH error %.2e", e)
	}
	if b.LastStats.TotalFlops() <= 0 {
		t.Error("no BH stats")
	}
	if b.Name() != "barnes-hut" || NewDirect().Name() != "direct" {
		t.Error("names wrong")
	}
}

func TestAndersonAccelerationsMatchDirect(t *testing.T) {
	sys := NewPlummerSystem(1000, 7)
	a, err := NewAnderson(sys.BoundingBox(), Options{Accuracy: Balanced, Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, acc, err := a.Accelerations(sys)
	if err != nil {
		t.Fatal(err)
	}
	want := NewDirect().Accelerations(sys)
	var rms, mean float64
	for i := range acc {
		rms += acc[i].Sub(want[i]).Norm2()
		mean += want[i].Norm()
	}
	rms = math.Sqrt(rms / float64(len(acc)))
	mean /= float64(len(acc))
	if rms/mean > 5e-3 {
		t.Errorf("acceleration error %.2e (Plummer is clustered; non-adaptive method)", rms/mean)
	}
}

func TestDataParallelSolver(t *testing.T) {
	sys := NewUniformSystem(1000, 8)
	d, err := NewDataParallel(4, sys.BoundingBox(), Options{Accuracy: Fast, Depth: 3}, dpfmm.DirectAliased)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := d.Potentials(sys)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewDirect().Potentials(sys)
	if e := relErr(phi, want); e > 1e-3 {
		t.Errorf("DP error %.2e", e)
	}
	r := d.Report("dp-run", sys.Len())
	if r.Efficiency() <= 0 || r.Efficiency() > 1 {
		t.Errorf("efficiency = %g", r.Efficiency())
	}
	if r.CyclesPerParticle() <= 0 {
		t.Errorf("cycles/particle = %g", r.CyclesPerParticle())
	}
	d.ResetCounters()
	if d.Report("x", 1).Flops != 0 {
		t.Error("reset did not clear counters")
	}
	if _, err := NewDataParallel(4, sys.BoundingBox(), Options{}, dpfmm.DirectAliased); err == nil {
		t.Error("missing depth accepted")
	}
}

func TestAnderson2DSolver(t *testing.T) {
	pos := make([]Vec2, 800)
	q := make([]float64, 800)
	sys := NewUniformSystem(800, 9)
	for i := range pos {
		pos[i] = Vec2{X: sys.Positions[i].X, Y: sys.Positions[i].Y}
		q[i] = sys.Charges[i]
	}
	box := Box2D{Center: Vec2{X: 0.5, Y: 0.5}, Side: 1.001}
	a, err := NewAnderson2D(box, Options2D{Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := a.Potentials(pos, q)
	if err != nil {
		t.Fatal(err)
	}
	want := DirectPotentials2D(pos, q)
	if e := relErr(phi, want); e > 1e-4 {
		t.Errorf("2-D error %.2e", e)
	}
	if _, err := NewAnderson2D(box, Options2D{}); err == nil {
		t.Error("missing depth accepted")
	}
}

func TestEstimateAccuracy(t *testing.T) {
	fast, err := EstimateAccuracy(Options{Accuracy: Fast})
	if err != nil {
		t.Fatal(err)
	}
	if fast.K != 12 {
		t.Errorf("Fast K = %d, want 12", fast.K)
	}
	acc, err := EstimateAccuracy(Options{Accuracy: Accurate})
	if err != nil {
		t.Fatal(err)
	}
	if acc.ExpectedDigits <= fast.ExpectedDigits {
		t.Errorf("Accurate digits (%.1f) not above Fast (%.1f)",
			acc.ExpectedDigits, fast.ExpectedDigits)
	}
	if fast.WorstPairError > 0.1 || acc.WorstPairError > 1e-3 {
		t.Errorf("errors out of band: %.2e, %.2e", fast.WorstPairError, acc.WorstPairError)
	}
	if _, err := EstimateAccuracy(Options{Degree: 5, Separation: -3}); err == nil {
		t.Error("invalid options accepted")
	}
}
