// Package nbody is a Go implementation of O(N) hierarchical N-body methods,
// reproducing Hu & Johnsson, "A Data-Parallel Implementation of O(N)
// Hierarchical N-body Methods" (Supercomputing '96).
//
// The package provides:
//
//   - Anderson's O(N) method (the fast multipole method "without
//     multipoles", built on Poisson-formula sphere approximations), in three
//     and two dimensions, with the paper's optimizations: two-separation
//     near fields, supernodes, BLAS-aggregated translations.
//   - A Barnes-Hut O(N log N) baseline and an O(N^2) direct baseline.
//   - A simulated CM-5-class data-parallel machine on which the paper's
//     communication experiments (interactive-field strategies, multigrid
//     embedding, translation-matrix replication) are reproduced with
//     element-accurate counters and a calibrated cycle model.
//
// Quick start:
//
//	sys := nbody.NewUniformSystem(100000, 1)
//	solver, _ := nbody.NewAnderson(sys.BoundingBox(), nbody.Options{Accuracy: nbody.Fast})
//	phi, _ := solver.Potentials(sys)
package nbody

import (
	"math"
	"math/rand"

	"nbody/internal/geom"
)

// Vec3 is a 3-D point or vector.
type Vec3 = geom.Vec3

// Vec2 is a 2-D point or vector.
type Vec2 = geom.Vec2

// Box is an axis-aligned cubic domain given by center and side.
type Box = geom.Box3

// Box2D is an axis-aligned square domain.
type Box2D = geom.Box2

// System is a set of charged (or massive) particles. For gravity, use
// masses as charges; the potential convention is phi(x) = sum q_j / r and
// the field returned by acceleration methods is +grad phi = sum q_j
// (y-x)/r^3, i.e. attractive toward positive charges.
type System struct {
	Positions []Vec3
	Charges   []float64
}

// Len returns the number of particles.
func (s *System) Len() int { return len(s.Positions) }

// BoundingBox returns the smallest cube centered on the particle centroid
// that contains every particle, padded slightly so boundary particles stay
// strictly inside after floating-point round-off.
func (s *System) BoundingBox() Box {
	if s.Len() == 0 {
		return Box{Center: Vec3{}, Side: 1}
	}
	lo := s.Positions[0]
	hi := s.Positions[0]
	for _, p := range s.Positions {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		lo.Z = math.Min(lo.Z, p.Z)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
		hi.Z = math.Max(hi.Z, p.Z)
	}
	side := math.Max(hi.X-lo.X, math.Max(hi.Y-lo.Y, hi.Z-lo.Z))
	if side == 0 {
		side = 1
	}
	side *= 1 + 1e-12
	return Box{Center: lo.Add(hi).Scale(0.5), Side: side}
}

// TotalCharge returns the sum of charges.
func (s *System) TotalCharge() float64 {
	var q float64
	for _, v := range s.Charges {
		q += v
	}
	return q
}

// NewUniformSystem returns n particles uniformly distributed in the unit
// cube [0,1)^3 with uniform positive charges — the distribution of all the
// paper's performance measurements.
func NewUniformSystem(n int, seed int64) *System {
	rng := rand.New(rand.NewSource(seed))
	s := &System{Positions: make([]Vec3, n), Charges: make([]float64, n)}
	for i := 0; i < n; i++ {
		s.Positions[i] = Vec3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		s.Charges[i] = rng.Float64()
	}
	return s
}

// NewPlummerSystem returns an n-body Plummer sphere (the standard
// astrophysical test distribution) with total mass 1, truncated at radius
// maxR scale lengths and rescaled into a unit cube centered at (0.5, 0.5,
// 0.5). The truncation keeps the non-adaptive hierarchy reasonable.
func NewPlummerSystem(n int, seed int64) *System {
	rng := rand.New(rand.NewSource(seed))
	const maxR = 8.0
	s := &System{Positions: make([]Vec3, n), Charges: make([]float64, n)}
	for i := 0; i < n; i++ {
		var r float64
		for {
			// Inverse-CDF sampling of the Plummer cumulative mass profile.
			x := rng.Float64()
			r = 1 / math.Sqrt(math.Pow(x, -2.0/3.0)-1)
			if r < maxR {
				break
			}
		}
		// Random direction.
		z := 2*rng.Float64() - 1
		phi := 2 * math.Pi * rng.Float64()
		sxy := math.Sqrt(1 - z*z)
		p := Vec3{X: r * sxy * math.Cos(phi), Y: r * sxy * math.Sin(phi), Z: r * z}
		// Rescale [-maxR, maxR] -> [0, 1).
		s.Positions[i] = Vec3{
			X: (p.X + maxR) / (2 * maxR),
			Y: (p.Y + maxR) / (2 * maxR),
			Z: (p.Z + maxR) / (2 * maxR),
		}
		s.Charges[i] = 1.0 / float64(n)
	}
	return s
}

// NewNeutralSystem returns a charge-neutral plasma-like cube: n particles,
// alternating +1/-1 charges, uniform positions.
func NewNeutralSystem(n int, seed int64) *System {
	s := NewUniformSystem(n, seed)
	for i := range s.Charges {
		if i%2 == 0 {
			s.Charges[i] = 1
		} else {
			s.Charges[i] = -1
		}
	}
	return s
}
