package nbody_test

import (
	"fmt"
	"math"

	"nbody"
)

// The basic workflow: generate a system, build a solver, compute
// potentials.
func ExampleNewAnderson() {
	sys := nbody.NewUniformSystem(5000, 1)
	solver, err := nbody.NewAnderson(sys.BoundingBox(), nbody.Options{Accuracy: nbody.Fast})
	if err != nil {
		panic(err)
	}
	phi, err := solver.Potentials(sys)
	if err != nil {
		panic(err)
	}
	// Compare one particle against the exact sum.
	var exact float64
	for j, p := range sys.Positions {
		if j != 0 {
			exact += sys.Charges[j] / p.Dist(sys.Positions[0])
		}
	}
	fmt.Printf("relative error below 1%%: %v\n", math.Abs(phi[0]-exact)/exact < 0.01)
	// Output:
	// relative error below 1%: true
}

// Time integration with the symplectic leapfrog helper.
func ExampleSimulation() {
	sys := nbody.NewPlummerSystem(500, 2)
	box := sys.BoundingBox()
	box.Side *= 1.2
	solver, err := nbody.NewAnderson(box, nbody.Options{Accuracy: nbody.Fast, Depth: 3})
	if err != nil {
		panic(err)
	}
	sim, err := nbody.NewSimulation(sys, nil, solver, 1e-5)
	if err != nil {
		panic(err)
	}
	_, _, e0 := sim.Energy()
	if err := sim.Step(3); err != nil {
		panic(err)
	}
	_, _, e1 := sim.Energy()
	fmt.Printf("energy drift below 1e-4: %v\n", math.Abs(e1-e0) < 1e-4*math.Abs(e0))
	// Output:
	// energy drift below 1e-4: true
}

// Predicting a configuration's accuracy before solving.
func ExampleEstimateAccuracy() {
	est, err := nbody.EstimateAccuracy(nbody.Options{Accuracy: nbody.Fast})
	if err != nil {
		panic(err)
	}
	fmt.Printf("K=%d, at least 1.5 digits: %v\n", est.K, est.ExpectedDigits >= 1.5)
	// Output:
	// K=12, at least 1.5 digits: true
}
