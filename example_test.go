package nbody_test

import (
	"fmt"
	"math"
	"time"

	"nbody"
	"nbody/internal/core"
	"nbody/internal/faults"
)

// The basic workflow: generate a system, build a solver, compute
// potentials.
func ExampleNewAnderson() {
	sys := nbody.NewUniformSystem(5000, 1)
	solver, err := nbody.NewAnderson(sys.BoundingBox(), nbody.Options{Accuracy: nbody.Fast})
	if err != nil {
		panic(err)
	}
	phi, err := solver.Potentials(sys)
	if err != nil {
		panic(err)
	}
	// Compare one particle against the exact sum.
	var exact float64
	for j, p := range sys.Positions {
		if j != 0 {
			exact += sys.Charges[j] / p.Dist(sys.Positions[0])
		}
	}
	fmt.Printf("relative error below 1%%: %v\n", math.Abs(phi[0]-exact)/exact < 0.01)
	// Output:
	// relative error below 1%: true
}

// Time integration with the symplectic leapfrog helper.
func ExampleSimulation() {
	sys := nbody.NewPlummerSystem(500, 2)
	box := sys.BoundingBox()
	box.Side *= 1.2
	solver, err := nbody.NewAnderson(box, nbody.Options{Accuracy: nbody.Fast, Depth: 3})
	if err != nil {
		panic(err)
	}
	sim, err := nbody.NewSimulation(sys, nil, solver, 1e-5)
	if err != nil {
		panic(err)
	}
	_, _, e0 := sim.Energy()
	if err := sim.Step(3); err != nil {
		panic(err)
	}
	_, _, e1 := sim.Energy()
	fmt.Printf("energy drift below 1e-4: %v\n", math.Abs(e1-e0) < 1e-4*math.Abs(e0))
	// Output:
	// energy drift below 1e-4: true
}

// Self-healing solves: a ladder of solvers behind a retry supervisor. The
// injected one-shot fault makes the first attempt fail exactly the way a
// real in-solve panic would; the supervisor retries and the solve completes
// on the preferred rung as if nothing happened.
func ExampleNewResilient() {
	defer faults.Reset()
	sys := nbody.NewUniformSystem(4096, 7)
	anderson, err := nbody.NewAnderson(sys.BoundingBox(), nbody.Options{Depth: 3})
	if err != nil {
		panic(err)
	}
	solver, err := nbody.NewResilient(nbody.RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
	}, anderson, nbody.NewDirect())
	if err != nil {
		panic(err)
	}

	faults.InjectPanic(core.FaultSiteT2, "transient hardware fault")
	phi, err := solver.Potentials(sys)
	fmt.Printf("healed: %v\n", err == nil && len(phi) == sys.Len())
	fmt.Printf("served by rung %d of %v\n", solver.LastRung(), solver.RungNames())
	// Output:
	// healed: true
	// served by rung 0 of [anderson direct]
}

// Predicting a configuration's accuracy before solving.
func ExampleEstimateAccuracy() {
	est, err := nbody.EstimateAccuracy(nbody.Options{Accuracy: nbody.Fast})
	if err != nil {
		panic(err)
	}
	fmt.Printf("K=%d, at least 1.5 digits: %v\n", est.K, est.ExpectedDigits >= 1.5)
	// Output:
	// K=12, at least 1.5 digits: true
}
