package nbody_test

import (
	"errors"
	"testing"

	nbody "nbody"
)

func unitBoxT() nbody.Box {
	return nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1.001}
}

// TestOptionsValidation checks that nonsensical Options are rejected at
// construction with ErrInvalidOptions — not deep inside plan building on
// the first solve.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts nbody.Options
		ok   bool
	}{
		{"zero value", nbody.Options{}, true},
		{"explicit depth", nbody.Options{Depth: 3}, true},
		{"explicit degree", nbody.Options{Degree: 5, Depth: 3}, true},
		{"negative degree", nbody.Options{Degree: -5}, false},
		{"negative M", nbody.Options{M: -1}, false},
		{"negative depth", nbody.Options{Depth: -2}, false},
		{"depth one", nbody.Options{Depth: 1}, false},
		{"negative separation", nbody.Options{Separation: -1}, false},
		{"negative radius ratio", nbody.Options{RadiusRatio: -0.9}, false},
		{"radius ratio below sphere bound", nbody.Options{RadiusRatio: 0.1}, false},
		{"supernodes need separation 2", nbody.Options{Depth: 3, Supernodes: true, Separation: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := nbody.NewAnderson(unitBoxT(), tc.opts)
			if tc.ok {
				if err != nil {
					t.Fatalf("NewAnderson(%+v) = %v, want ok", tc.opts, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("NewAnderson(%+v) succeeded, want error", tc.opts)
			}
			if !errors.Is(err, nbody.ErrInvalidOptions) {
				t.Errorf("error %v does not wrap ErrInvalidOptions", err)
			}
			if s != nil {
				t.Error("non-nil solver returned with error")
			}
		})
	}
}

// TestOptionsValidationDataParallel checks the same eager rejection on the
// data-parallel constructor, including its explicit-depth requirement.
func TestOptionsValidationDataParallel(t *testing.T) {
	cases := []struct {
		name string
		opts nbody.Options
	}{
		{"missing depth", nbody.Options{}},
		{"negative degree", nbody.Options{Degree: -1, Depth: 3}},
		{"negative separation", nbody.Options{Depth: 3, Separation: -2}},
		{"negative radius ratio", nbody.Options{Depth: 3, RadiusRatio: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := nbody.NewDataParallel(8, unitBoxT(), tc.opts, 0)
			if err == nil {
				t.Fatalf("NewDataParallel(%+v) succeeded, want error", tc.opts)
			}
			if !errors.Is(err, nbody.ErrInvalidOptions) {
				t.Errorf("error %v does not wrap ErrInvalidOptions", err)
			}
		})
	}
}

// TestOptionsValidation2D checks the 2-D constructor's eager rejection.
func TestOptionsValidation2D(t *testing.T) {
	box := nbody.Box2D{Center: nbody.Vec2{X: 0.5, Y: 0.5}, Side: 1.001}
	cases := []struct {
		name string
		opts nbody.Options2D
		ok   bool
	}{
		{"valid", nbody.Options2D{Depth: 3}, true},
		{"negative K", nbody.Options2D{K: -4, Depth: 3}, false},
		{"tiny K", nbody.Options2D{K: 2, Depth: 3}, false},
		{"negative M", nbody.Options2D{M: -1, Depth: 3}, false},
		{"M too large for K", nbody.Options2D{K: 16, M: 9, Depth: 3}, false},
		{"negative depth", nbody.Options2D{Depth: -3}, false},
		{"depth one", nbody.Options2D{Depth: 1}, false},
		{"negative separation", nbody.Options2D{Depth: 3, Separation: -1}, false},
		{"negative radius ratio", nbody.Options2D{Depth: 3, RadiusRatio: -0.5}, false},
		{"radius ratio below circle bound", nbody.Options2D{Depth: 3, RadiusRatio: 0.2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := nbody.NewAnderson2D(box, tc.opts)
			if tc.ok {
				if err != nil {
					t.Fatalf("NewAnderson2D(%+v) = %v, want ok", tc.opts, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("NewAnderson2D(%+v) succeeded, want error", tc.opts)
			}
			if !errors.Is(err, nbody.ErrInvalidOptions) {
				t.Errorf("error %v does not wrap ErrInvalidOptions", err)
			}
		})
	}
}
