package nbody_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"nbody"
	"nbody/internal/core"
	"nbody/internal/plan"
)

// TestAutoOptionsAnalyticDepth pins the compatibility contract of the
// public auto path: for the Fast preset the planner's analytic depth is
// the classic occupancy heuristic, so AutoOptions changes nothing for code
// that previously relied on Depth-0 lazy resolution.
func TestAutoOptionsAnalyticDepth(t *testing.T) {
	for _, n := range []int{64, 512, 2048, 8192, 32768} {
		sys := nbody.NewUniformSystem(n, 1)
		opts := nbody.AutoOptions(sys, nbody.Fast)
		if want := core.OptimalDepth(n, 32); opts.Depth != want {
			t.Errorf("n=%d: AutoOptions depth %d, OptimalDepth %d", n, opts.Depth, want)
		}
		if opts.Accuracy != nbody.Fast {
			t.Errorf("n=%d: preset not carried through", n)
		}
	}
	// Nil system: still a valid (small-N) resolution, never a panic.
	if opts := nbody.AutoOptions(nil, nbody.Accurate); opts.Depth < 2 {
		t.Errorf("nil system resolved depth %d", opts.Depth)
	}
}

// TestAutoOptionsBitwise is the planner-transparency guarantee: a solver
// built from planner-chosen Options produces bitwise-identical potentials
// to one built from hand-specified Options of the same shape. Choosing a
// plan automatically must never change what the plan computes.
func TestAutoOptionsBitwise(t *testing.T) {
	const n = 512
	sys := nbody.NewUniformSystem(n, 9)
	box := nbody.Box{Center: nbody.Vec3{X: 0.5, Y: 0.5, Z: 0.5}, Side: 1.1}

	auto := nbody.AutoOptions(sys, nbody.Fast)
	a, err := nbody.NewAnderson(box, auto)
	if err != nil {
		t.Fatal(err)
	}
	phiAuto, err := a.Potentials(sys)
	if err != nil {
		t.Fatal(err)
	}

	manual, err := nbody.NewAnderson(box, nbody.Options{Accuracy: nbody.Fast, Depth: auto.Depth})
	if err != nil {
		t.Fatal(err)
	}
	phiManual, err := manual.Potentials(sys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range phiAuto {
		if phiAuto[i] != phiManual[i] {
			t.Fatalf("phi[%d]: auto %v != manual %v", i, phiAuto[i], phiManual[i])
		}
	}

	// And the lazy Depth-0 path (the pre-planner auto) agrees too, for the
	// Fast preset where the planner reproduces the old heuristic.
	lazy, err := nbody.NewAnderson(box, nbody.Options{Accuracy: nbody.Fast})
	if err != nil {
		t.Fatal(err)
	}
	phiLazy, err := lazy.Potentials(sys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range phiAuto {
		if phiAuto[i] != phiLazy[i] {
			t.Fatalf("phi[%d]: auto %v != lazy depth-0 %v", i, phiAuto[i], phiLazy[i])
		}
	}
}

// TestAutoOptionsStored pins the warm-start path: a tuned-plan store on
// disk overrides the analytic depth with the measured-best one, reports
// tuned provenance, and a missing store falls back silently while a
// corrupt one fails loudly.
func TestAutoOptionsStored(t *testing.T) {
	const n = 2048
	sys := nbody.NewUniformSystem(n, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "plans.nbp")

	// Missing store: analytic fallback, no error.
	opts, prov, err := nbody.AutoOptionsStored(sys, nbody.Fast, path)
	if err != nil || prov != string(plan.ProvenanceAnalytic) {
		t.Fatalf("missing store: provenance %q err %v", prov, err)
	}
	analytic := opts.Depth

	// Persist a tuned entry for this exact shape at a different depth.
	tuned := analytic + 1
	p := plan.NewPlanner(0)
	shape := plan.ShapeKey{N: n, Dist: plan.Fingerprint(sys.Positions), Accuracy: "fast"}
	key := plan.Key{Shape: shape, Plan: plan.Plan{Depth: tuned, K: plan.AccuracyK("fast")}}
	p.Observe(key, 2*time.Millisecond)
	p.Observe(key, 2*time.Millisecond)
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}

	opts, prov, err = nbody.AutoOptionsStored(sys, nbody.Fast, path)
	if err != nil {
		t.Fatal(err)
	}
	if prov != string(plan.ProvenanceTuned) || opts.Depth != tuned {
		t.Fatalf("stored resolve: depth %d provenance %q, want %d tuned", opts.Depth, prov, tuned)
	}

	// Corrupt store: loud error.
	if err := os.WriteFile(path, []byte("not a store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := nbody.AutoOptionsStored(sys, nbody.Fast, path); err == nil {
		t.Fatal("corrupt store accepted")
	}
}
