package nbody

import (
	"context"
	"fmt"

	"nbody/internal/bh"
	"nbody/internal/core"
	"nbody/internal/core2"
	"nbody/internal/direct"
	"nbody/internal/dp"
	"nbody/internal/dpfmm"
	"nbody/internal/metrics"
)

// Accuracy selects a calibrated parameter preset for Anderson's method,
// mirroring the paper's two headline configurations.
type Accuracy int

// The presets.
const (
	// Fast is the paper's low-accuracy configuration: the 12-point
	// icosahedral rule (integration order D = 5), about four digits
	// relative to the mean field.
	Fast Accuracy = iota
	// Balanced is an intermediate configuration (D = 9).
	Balanced
	// Accurate approximates the paper's D = 14 configuration with the
	// degree-13 product rule, about six to seven digits.
	Accurate
)

func (a Accuracy) degree() int {
	switch a {
	case Fast:
		return 5
	case Balanced:
		return 9
	default:
		return 13
	}
}

// Options configures an Anderson solver. The zero value selects the Fast
// preset with an automatically chosen hierarchy depth.
type Options struct {
	// Accuracy selects a preset; ignored when Degree is set explicitly.
	Accuracy Accuracy
	// Degree overrides the integration order D.
	Degree int
	// M overrides the Legendre truncation (default ceil(D/2)).
	M int
	// Depth fixes the hierarchy depth; 0 chooses the optimal depth for the
	// first solved system (Section 2.3) and keeps it thereafter.
	Depth int
	// Separation overrides the near-field separation (default 2).
	Separation int
	// Supernodes enables the 875 -> 189 interactive-field reduction.
	Supernodes bool
	// RadiusRatio overrides the sphere radius in box-side units.
	RadiusRatio float64
	// DisableAggregation turns off BLAS-3 translation aggregation.
	DisableAggregation bool
}

// validate rejects nonsensical option values at construction time, wrapping
// ErrInvalidOptions, so a misconfigured solver fails in NewAnderson /
// NewDataParallel rather than deep inside plan building on the first solve.
func (o Options) validate() error {
	switch {
	case o.Degree < 0:
		return fmt.Errorf("%w: negative Degree %d", ErrInvalidOptions, o.Degree)
	case o.M < 0:
		return fmt.Errorf("%w: negative M %d", ErrInvalidOptions, o.M)
	case o.Depth < 0:
		return fmt.Errorf("%w: negative Depth %d", ErrInvalidOptions, o.Depth)
	case o.Depth == 1:
		return fmt.Errorf("%w: Depth 1 has no interactive field (need Depth >= 2, or 0 for automatic)", ErrInvalidOptions)
	case o.Separation < 0:
		return fmt.Errorf("%w: negative Separation %d", ErrInvalidOptions, o.Separation)
	case o.RadiusRatio < 0:
		return fmt.Errorf("%w: negative RadiusRatio %g", ErrInvalidOptions, o.RadiusRatio)
	}
	// Dry-run the core normalizer so invalid parameter combinations (a
	// RadiusRatio too small to enclose a box, an unsupported Separation,
	// a Degree with no integration rule) also fail here. The probe depth
	// stands in when the real depth is chosen at first solve.
	depth := o.Depth
	if depth == 0 {
		depth = 2
	}
	if _, err := o.coreConfig(depth).Normalized(); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalidOptions, err)
	}
	return nil
}

func (o Options) coreConfig(depth int) core.Config {
	deg := o.Degree
	if deg == 0 {
		deg = o.Accuracy.degree()
	}
	return core.Config{
		Degree:             deg,
		M:                  o.M,
		Depth:              depth,
		Separation:         o.Separation,
		Supernodes:         o.Supernodes,
		RadiusRatio:        o.RadiusRatio,
		DisableAggregation: o.DisableAggregation,
	}
}

// Anderson is the shared-memory O(N) solver.
type Anderson struct {
	box    Box
	opts   Options
	solver *core.Solver
}

// NewAnderson builds an Anderson solver over the given domain. Invalid
// options are rejected here with an error wrapping ErrInvalidOptions.
func NewAnderson(box Box, opts Options) (*Anderson, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	a := &Anderson{box: box, opts: opts}
	if opts.Depth != 0 {
		s, err := core.NewSolver(box, opts.coreConfig(opts.Depth))
		if err != nil {
			return nil, err
		}
		a.solver = s
	}
	return a, nil
}

func (a *Anderson) ensureSolver(n int) error {
	if a.solver != nil {
		return nil
	}
	depth := core.OptimalDepth(n, 32)
	s, err := core.NewSolver(a.box, a.opts.coreConfig(depth))
	if err != nil {
		return err
	}
	a.solver = s
	return nil
}

// Name identifies the solver in comparison tables.
func (a *Anderson) Name() string { return "anderson" }

// prepare validates the system against the solver domain and lazily builds
// the core solver — the shared prologue of every entry point.
func (a *Anderson) prepare(s *System) error {
	if err := s.Validate(a.box); err != nil {
		return err
	}
	return a.ensureSolver(s.Len())
}

// activeRec exposes the phase recorder for panic attribution (nil before the
// first solve builds the core solver).
func (a *Anderson) activeRec() *metrics.Rec {
	if a.solver == nil {
		return nil
	}
	return a.solver.Rec()
}

// Potentials computes the potential at every particle of the system. Invalid
// systems are rejected with ErrInvalidSystem or ErrOutOfDomain; an internal
// panic is recovered and returned as an *InternalError naming the active
// phase, after which the solver remains usable (see InternalError's
// safe-to-retry contract).
func (a *Anderson) Potentials(s *System) ([]float64, error) {
	return run(func() error { return a.prepare(s) }, a.activeRec, func() ([]float64, error) {
		return a.solver.Potentials(s.Positions, s.Charges)
	})
}

// PotentialsCtx is Potentials with cancellation: a canceled or expired
// context aborts the solve between phases and within the parallel sweeps of
// each phase (within at most one work chunk), returning ctx.Err().
func (a *Anderson) PotentialsCtx(ctx context.Context, s *System) ([]float64, error) {
	return run(func() error { return a.prepare(s) }, a.activeRec, func() ([]float64, error) {
		return a.solver.PotentialsCtx(ctx, s.Positions, s.Charges)
	})
}

// Accelerations computes potentials and the field +grad phi, under the same
// validation and panic-containment contract as Potentials.
func (a *Anderson) Accelerations(s *System) ([]float64, []Vec3, error) {
	r, err := run(func() error { return a.prepare(s) }, a.activeRec, func() (phiAcc, error) {
		phi, acc, err := a.solver.Accelerations(s.Positions, s.Charges)
		return phiAcc{phi, acc}, err
	})
	return r.phi, r.acc, err
}

// AccelerationsCtx is Accelerations with cancellation, under the same
// latency bound as PotentialsCtx.
func (a *Anderson) AccelerationsCtx(ctx context.Context, s *System) ([]float64, []Vec3, error) {
	r, err := run(func() error { return a.prepare(s) }, a.activeRec, func() (phiAcc, error) {
		phi, acc, err := a.solver.AccelerationsCtx(ctx, s.Positions, s.Charges)
		return phiAcc{phi, acc}, err
	})
	return r.phi, r.acc, err
}

// PotentialsInto computes the potentials into the caller-owned slice phi
// (length s.Len()). Repeated solves on one Anderson reuse all internal
// buffers — steady state allocates nothing and is bitwise reproducible.
// One solve at a time per solver. On an *InternalError return, phi may hold
// partial results but no goroutine retains a reference to it; reuse or
// retry is safe.
func (a *Anderson) PotentialsInto(phi []float64, s *System) error {
	return runErr(func() error { return a.prepare(s) }, a.activeRec, func() error {
		return a.solver.PotentialsInto(phi, s.Positions, s.Charges)
	})
}

// PotentialsIntoCtx is PotentialsInto with cancellation.
func (a *Anderson) PotentialsIntoCtx(ctx context.Context, phi []float64, s *System) error {
	return runErr(func() error { return a.prepare(s) }, a.activeRec, func() error {
		return a.solver.PotentialsIntoCtx(ctx, phi, s.Positions, s.Charges)
	})
}

// AccelerationsInto computes potentials and fields into caller-owned slices
// (each length s.Len()), under the same reuse contract as PotentialsInto.
// This is the time-stepping path: Simulation uses it automatically.
func (a *Anderson) AccelerationsInto(phi []float64, acc []Vec3, s *System) error {
	return runErr(func() error { return a.prepare(s) }, a.activeRec, func() error {
		return a.solver.AccelerationsInto(phi, acc, s.Positions, s.Charges)
	})
}

// AccelerationsIntoCtx is AccelerationsInto with cancellation.
func (a *Anderson) AccelerationsIntoCtx(ctx context.Context, phi []float64, acc []Vec3, s *System) error {
	return runErr(func() error { return a.prepare(s) }, a.activeRec, func() error {
		return a.solver.AccelerationsIntoCtx(ctx, phi, acc, s.Positions, s.Charges)
	})
}

// PotentialsAt evaluates the field of the system's charges at arbitrary
// probe points inside the domain (no self-exclusion).
func (a *Anderson) PotentialsAt(s *System, targets []Vec3) ([]float64, error) {
	return run(func() error { return a.prepare(s) }, a.activeRec, func() ([]float64, error) {
		return a.solver.PotentialsAt(s.Positions, s.Charges, targets)
	})
}

// Stats exposes the per-phase instrumentation of all solves so far.
func (a *Anderson) Stats() *core.Stats {
	if a.solver == nil {
		return &core.Stats{}
	}
	return a.solver.Stats()
}

// Depth returns the hierarchy depth in use (0 before the first solve when
// auto-selected).
func (a *Anderson) Depth() int {
	if a.solver == nil {
		return 0
	}
	return a.solver.Config().Depth
}

// BarnesHut is the O(N log N) baseline solver.
type BarnesHut struct {
	box Box
	cfg bh.Config
	// LastStats holds the traversal statistics of the most recent solve.
	LastStats bh.Stats
}

// NewBarnesHut builds a Barnes-Hut solver with opening angle theta
// (0 selects 0.6) and quadrupole cell expansions.
func NewBarnesHut(box Box, theta float64) *BarnesHut {
	return &BarnesHut{box: box, cfg: bh.Config{Theta: theta, Quadrupole: true}}
}

// Name identifies the solver in comparison tables.
func (b *BarnesHut) Name() string { return "barnes-hut" }

// Potentials computes the potential at every particle.
func (b *BarnesHut) Potentials(s *System) ([]float64, error) {
	tr, err := bh.Build(b.box, s.Positions, s.Charges, b.cfg)
	if err != nil {
		return nil, err
	}
	phi, st := tr.Potentials(b.cfg)
	b.LastStats = st
	return phi, nil
}

// Direct is the O(N^2) baseline solver.
type Direct struct{}

// NewDirect returns the direct-summation solver.
func NewDirect() *Direct { return &Direct{} }

// Name identifies the solver in comparison tables.
func (Direct) Name() string { return "direct" }

// Potentials computes the exact potentials by direct summation.
func (Direct) Potentials(s *System) ([]float64, error) {
	return direct.PotentialsParallel(s.Positions, s.Charges), nil
}

// Accelerations computes the exact accelerations by direct summation.
func (Direct) Accelerations(s *System) []Vec3 {
	return direct.Accelerations(s.Positions, s.Charges)
}

// Solver is the interface all 3-D solvers satisfy.
type Solver interface {
	Name() string
	Potentials(*System) ([]float64, error)
}

var (
	_ Solver = (*Anderson)(nil)
	_ Solver = (*BarnesHut)(nil)
	_ Solver = Direct{}
)

// DataParallel runs Anderson's method on the simulated CM-5-class machine
// and reports the paper's efficiency metrics.
type DataParallel struct {
	Machine *dpfmm.Solver
	m       *dp.Machine
	box     Box
}

// NewDataParallel builds the data-parallel solver on a machine of the given
// number of nodes (4 VUs each, CM-5E cost model). Depth must be set in
// opts.
func NewDataParallel(nodes int, box Box, opts Options, strategy dpfmm.GhostStrategy) (*DataParallel, error) {
	if opts.Depth == 0 {
		return nil, fmt.Errorf("%w: data-parallel solver needs an explicit Depth", ErrInvalidOptions)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	m, err := dp.NewMachine(nodes, 4, dp.CostModel{})
	if err != nil {
		return nil, err
	}
	s, err := dpfmm.NewSolver(m, box, opts.coreConfig(opts.Depth), strategy)
	if err != nil {
		return nil, err
	}
	return &DataParallel{Machine: s, m: m, box: box}, nil
}

// Name identifies the solver in comparison tables.
func (d *DataParallel) Name() string { return "anderson-dp" }

// activeRec exposes the phase recorder for panic attribution.
func (d *DataParallel) activeRec() *metrics.Rec { return d.Machine.Rec() }

// Potentials solves on the simulated machine, under the same validation and
// panic-containment contract as Anderson.Potentials.
func (d *DataParallel) Potentials(s *System) ([]float64, error) {
	return run(func() error { return s.Validate(d.box) }, d.activeRec, func() ([]float64, error) {
		return d.Machine.Potentials(s.Positions, s.Charges)
	})
}

// PotentialsCtx is Potentials with cancellation. The simulated machine's
// collective sweeps are not individually interruptible, so cancellation is
// observed between pipeline phases: the latency bound is one phase, not one
// chunk.
func (d *DataParallel) PotentialsCtx(ctx context.Context, s *System) ([]float64, error) {
	return run(func() error { return s.Validate(d.box) }, d.activeRec, func() ([]float64, error) {
		return d.Machine.PotentialsCtx(ctx, s.Positions, s.Charges)
	})
}

// Accelerations computes potentials and fields on the simulated machine.
func (d *DataParallel) Accelerations(s *System) ([]float64, []Vec3, error) {
	r, err := run(func() error { return s.Validate(d.box) }, d.activeRec, func() (phiAcc, error) {
		phi, acc, err := d.Machine.Accelerations(s.Positions, s.Charges)
		return phiAcc{phi, acc}, err
	})
	return r.phi, r.acc, err
}

// Report assembles the Table 1 metrics of everything run so far.
func (d *DataParallel) Report(name string, particles int) metrics.Report {
	return metrics.FromMachine(name, d.m, d.m.Counters(), particles)
}

// ResetCounters clears the machine instrumentation.
func (d *DataParallel) ResetCounters() { d.m.ResetCounters() }

// Anderson2D is the two-dimensional solver.
type Anderson2D struct {
	solver *core2.Solver
	box    Box2D
}

// Options2D configures the 2-D solver.
type Options2D struct {
	K           int // circle points (default 16)
	M           int
	Depth       int // required
	Separation  int
	RadiusRatio float64
}

// validate rejects nonsensical 2-D option values at construction, wrapping
// ErrInvalidOptions like the 3-D counterpart.
func (o Options2D) validate() error {
	switch {
	case o.K < 0:
		return fmt.Errorf("%w: negative K %d", ErrInvalidOptions, o.K)
	case o.M < 0:
		return fmt.Errorf("%w: negative M %d", ErrInvalidOptions, o.M)
	case o.Depth < 0:
		return fmt.Errorf("%w: negative Depth %d", ErrInvalidOptions, o.Depth)
	case o.Separation < 0:
		return fmt.Errorf("%w: negative Separation %d", ErrInvalidOptions, o.Separation)
	case o.RadiusRatio < 0:
		return fmt.Errorf("%w: negative RadiusRatio %g", ErrInvalidOptions, o.RadiusRatio)
	}
	return nil
}

// NewAnderson2D builds the 2-D solver. Invalid options are rejected with an
// error wrapping ErrInvalidOptions.
func NewAnderson2D(box Box2D, opts Options2D) (*Anderson2D, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.K == 0 {
		opts.K = 16
	}
	s, err := core2.NewSolver(box, core2.Config{
		K: opts.K, M: opts.M, Depth: opts.Depth,
		Separation: opts.Separation, RadiusRatio: opts.RadiusRatio,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidOptions, err)
	}
	return &Anderson2D{solver: s, box: box}, nil
}

// activeRec exposes the phase recorder for panic attribution.
func (a *Anderson2D) activeRec() *metrics.Rec { return a.solver.Rec() }

// Potentials computes phi_i = -sum q_j ln r_ij at every particle, under the
// same validation and panic-containment contract as the 3-D solver.
func (a *Anderson2D) Potentials(pos []Vec2, q []float64) ([]float64, error) {
	return run(func() error { return validate2D(pos, q, a.box) }, a.activeRec, func() ([]float64, error) {
		return a.solver.Potentials(pos, q)
	})
}

// PotentialsCtx is Potentials with cancellation: a canceled context aborts
// between phases and within parallel sweeps, returning ctx.Err().
func (a *Anderson2D) PotentialsCtx(ctx context.Context, pos []Vec2, q []float64) ([]float64, error) {
	return run(func() error { return validate2D(pos, q, a.box) }, a.activeRec, func() ([]float64, error) {
		return a.solver.PotentialsCtx(ctx, pos, q)
	})
}

// Stats exposes the 2-D solver's per-phase instrumentation.
func (a *Anderson2D) Stats() *metrics.Snapshot { return a.solver.Stats() }

// DirectPotentials2D is the 2-D direct reference.
func DirectPotentials2D(pos []Vec2, q []float64) []float64 {
	return core2.DirectPotentials2(pos, q)
}
