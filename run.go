package nbody

import (
	"errors"

	"nbody/internal/metrics"
	"nbody/internal/pipeline"
)

// run executes one public solve entry point: prep (validation plus any lazy
// solver construction), then fn under panic containment. A panic escaping
// fn — or a pipeline.PanicError the phase runner already contained — is
// returned as an *InternalError attributed to the recorder's active phase.
// Every public wrapper in this package is an instantiation of this helper;
// the validate → recover → solve sequence lives only here.
func run[T any](prep func() error, rec func() *metrics.Rec, fn func() (T, error)) (out T, err error) {
	if err = prep(); err != nil {
		return out, err
	}
	defer recoverInternal(rec(), &err)
	out, err = fn()
	err = internalize(err)
	return out, err
}

// runErr is run for entry points that return only an error.
func runErr(prep func() error, rec func() *metrics.Rec, fn func() error) error {
	_, err := run(prep, rec, func() (struct{}, error) { return struct{}{}, fn() })
	return err
}

// phiAcc pairs the two outputs of an acceleration solve for the generic
// run helper.
type phiAcc struct {
	phi []float64
	acc []Vec3
}

// internalize converts a pipeline.PanicError — a panic the phase runner
// contained inside a solve — into the exported *InternalError type. Other
// errors (including nil) pass through unchanged.
func internalize(err error) error {
	if err == nil {
		return nil
	}
	var pe *pipeline.PanicError
	if errors.As(err, &pe) {
		return &InternalError{Phase: pe.Phase, Value: pe.Value, Stack: pe.Stack}
	}
	return err
}
