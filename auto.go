package nbody

import (
	"fmt"

	"nbody/internal/plan"
)

// accuracyName maps the Options preset onto the plan subsystem's canonical
// accuracy string (the one the serve wire protocol and the CLI use).
func (a Accuracy) accuracyName() string {
	switch a {
	case Balanced:
		return "balanced"
	case Accurate:
		return "accurate"
	default:
		return "fast"
	}
}

// AutoOptions resolves the Options the plan subsystem recommends for
// solving sys at the given accuracy preset: the hierarchy depth is the
// cost model's argmin for the system's shape (particle count and
// distribution fingerprint), not just an occupancy rule of thumb. The
// result is deterministic in the system, so equal systems always resolve
// to equal Options and a solver built from them is bitwise reproducible
// against one built from the same Options by hand.
//
// For measured (tuned) resolutions warmed from a persistent store, use
// AutoOptionsStored.
func AutoOptions(sys *System, acc Accuracy) Options {
	opts, _, _ := autoOptions(sys, acc, "")
	return opts
}

// AutoOptionsStored is AutoOptions warmed from the persistent tuned-plan
// store at path: a shape that was previously tuned (by nbody -autotune or
// a serving process) resolves to its measured-best depth instead of the
// analytic one, with no search. A missing store is not an error — the
// resolution simply falls back to the analytic model; a corrupt store is.
// The returned provenance string reports which source answered ("tuned",
// "analytic").
func AutoOptionsStored(sys *System, acc Accuracy, path string) (Options, string, error) {
	return autoOptions(sys, acc, path)
}

func autoOptions(sys *System, acc Accuracy, path string) (Options, string, error) {
	p := plan.NewPlanner(0)
	if path != "" {
		if _, err := p.Load(path); err != nil {
			return Options{}, "", fmt.Errorf("nbody: %w", err)
		}
	}
	shape := plan.ShapeKey{Accuracy: acc.accuracyName()}
	if sys != nil {
		shape.N = sys.Len()
		shape.Dist = plan.Fingerprint(sys.Positions)
	}
	pl, prov := p.Resolve(shape, plan.Request{})
	return Options{Accuracy: acc, Depth: pl.Depth}, string(prov), nil
}
