module nbody

go 1.22
