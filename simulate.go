package nbody

import (
	"fmt"

	"nbody/internal/metrics"
)

// Accelerator is any solver that can produce potentials and fields for a
// system (Anderson and DataParallel qualify; Direct through the adapter
// below).
type Accelerator interface {
	Accelerations(*System) ([]float64, []Vec3, error)
}

// AcceleratorInto is the allocation-free variant: the solver writes
// potentials and fields into caller-owned slices and reuses its internal
// working memory between calls (Anderson implements it). Simulation detects
// it and runs every step after the first without allocating.
type AcceleratorInto interface {
	AccelerationsInto(phi []float64, acc []Vec3, s *System) error
}

// DirectAccelerator adapts the O(N^2) solver to the Accelerator interface.
type DirectAccelerator struct{ Direct }

// Accelerations computes exact potentials and fields.
func (d DirectAccelerator) Accelerations(s *System) ([]float64, []Vec3, error) {
	phi, err := d.Potentials(s)
	if err != nil {
		return nil, nil, err
	}
	return phi, d.Direct.Accelerations(s), nil
}

// Simulation integrates a self-interacting system with the kick-drift-kick
// leapfrog scheme, the standard symplectic integrator for N-body dynamics.
// Charges act as gravitational masses: the field is attractive toward
// positive charges (the +grad phi convention used throughout).
type Simulation struct {
	System     *System
	Velocities []Vec3
	Solver     Accelerator
	DT         float64

	acc  []Vec3
	phi  []float64
	into AcceleratorInto // non-nil when Solver supports in-place solves
	time float64
	step int

	// Periodic checkpointing, armed by EnableCheckpoints.
	ckPath  string
	ckEvery int
}

// EnableCheckpoints arms periodic checkpointing: after every `every`
// completed steps, Step atomically writes a snapshot to path (see
// CheckpointFile), so a crashed run resumes from the last multiple of
// `every` instead of from zero.
func (s *Simulation) EnableCheckpoints(path string, every int) error {
	if path == "" {
		return fmt.Errorf("nbody: empty checkpoint path")
	}
	if every <= 0 {
		return fmt.Errorf("nbody: non-positive checkpoint interval %d", every)
	}
	s.ckPath, s.ckEvery = path, every
	return nil
}

// NewSimulation prepares a simulation; velocities may be nil for a cold
// start.
func NewSimulation(sys *System, vel []Vec3, solver Accelerator, dt float64) (*Simulation, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("nbody: non-positive timestep %g", dt)
	}
	if vel == nil {
		vel = make([]Vec3, sys.Len())
	}
	if len(vel) != sys.Len() {
		return nil, fmt.Errorf("nbody: %d velocities for %d particles", len(vel), sys.Len())
	}
	s := &Simulation{System: sys, Velocities: vel, Solver: solver, DT: dt}
	s.into, _ = solver.(AcceleratorInto)
	s.phi = make([]float64, sys.Len())
	s.acc = make([]Vec3, sys.Len())
	if err := s.solve(); err != nil {
		return nil, err
	}
	return s, nil
}

// phaseRecorder is satisfied by the solvers whose panics can be attributed
// to a pipeline phase (Anderson and DataParallel).
type phaseRecorder interface{ activeRec() *metrics.Rec }

// solve refreshes phi and acc from the solver, containing any panic the
// solver lets escape: the panic becomes an *InternalError and the
// simulation's own state (positions, velocities, step counter) is untouched,
// so the caller may retry the step or abandon the run cleanly.
func (s *Simulation) solve() error {
	return runErr(func() error { return nil }, s.activeRec, func() error {
		if s.into != nil {
			return s.into.AccelerationsInto(s.phi, s.acc, s.System)
		}
		phi, acc, err := s.Solver.Accelerations(s.System)
		if err != nil {
			return err
		}
		s.phi, s.acc = phi, acc
		return nil
	})
}

// activeRec exposes the underlying solver's phase recorder when it has one
// (nil otherwise), for panic attribution in solve.
func (s *Simulation) activeRec() *metrics.Rec {
	if pr, ok := s.Solver.(phaseRecorder); ok {
		return pr.activeRec()
	}
	return nil
}

// Step advances the system by n leapfrog steps.
func (s *Simulation) Step(n int) error {
	for k := 0; k < n; k++ {
		dt := s.DT
		for i := range s.Velocities {
			s.Velocities[i] = s.Velocities[i].Add(s.acc[i].Scale(dt / 2))
			s.System.Positions[i] = s.System.Positions[i].Add(s.Velocities[i].Scale(dt))
		}
		if err := s.solve(); err != nil {
			return fmt.Errorf("nbody: step %d: %w", s.step+1, err)
		}
		for i := range s.Velocities {
			s.Velocities[i] = s.Velocities[i].Add(s.acc[i].Scale(dt / 2))
		}
		s.step++
		s.time += dt
		if s.ckEvery > 0 && s.step%s.ckEvery == 0 {
			if err := s.CheckpointFile(s.ckPath); err != nil {
				return fmt.Errorf("nbody: step %d: checkpoint: %w", s.step, err)
			}
		}
	}
	return nil
}

// Time returns the accumulated simulation time.
func (s *Simulation) Time() float64 { return s.time }

// Steps returns the number of completed steps.
func (s *Simulation) Steps() int { return s.step }

// Energy returns kinetic, potential and total energy. The potential energy
// uses the gravitational sign convention U = -(1/2) sum m_i phi_i.
func (s *Simulation) Energy() (kinetic, potential, total float64) {
	for i := range s.Velocities {
		kinetic += 0.5 * s.System.Charges[i] * s.Velocities[i].Norm2()
		potential -= 0.5 * s.System.Charges[i] * s.phi[i]
	}
	return kinetic, potential, kinetic + potential
}

// Accel returns the most recent acceleration field (valid after
// NewSimulation and after every Step).
func (s *Simulation) Accel() []Vec3 { return s.acc }
